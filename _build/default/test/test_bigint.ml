(* Unit and property tests for the bignum substrate. *)

module B = Prio_bigint.Bigint

let check_b msg expected actual =
  Alcotest.(check string) msg expected (B.to_string actual)

(* --------------------------- unit tests ---------------------------- *)

let test_of_to_int () =
  List.iter
    (fun x -> Alcotest.(check int) "roundtrip" x (B.to_int_exn (B.of_int x)))
    [ 0; 1; -1; 42; -42; 1 lsl 40; -(1 lsl 40); max_int; min_int ];
  Alcotest.(check bool) "sign of zero" true (B.sign B.zero = 0);
  Alcotest.(check bool) "is_zero" true (B.is_zero (B.of_int 0))

let test_string_roundtrip () =
  List.iter
    (fun s -> check_b s s (B.of_string s))
    [
      "0"; "1"; "-1"; "123456789";
      "123456789012345678901234567890123456789";
      "-999999999999999999999999999999";
      "1000000000000000000000000000000000000";
    ]

let test_hex () =
  Alcotest.(check string) "hex" "0xff" (B.to_string_hex (B.of_int 255));
  Alcotest.(check string) "hex big" "0x7c80000000000000000001"
    (B.to_string_hex (B.of_string "150511264542021332250918913"));
  check_b "parse hex" "255" (B.of_string "0xff");
  check_b "parse hex upper" "48879" (B.of_string "0xBEEF");
  check_b "parse negative hex" "-255" (B.of_string "-0xff")

let test_add_sub () =
  let a = B.of_string "99999999999999999999999999" in
  let b = B.of_string "1" in
  check_b "carry chain" "100000000000000000000000000" (B.add a b);
  check_b "sub to zero" "0" (B.sub a a);
  check_b "negative result" "-1" (B.sub b (B.of_int 2));
  check_b "mixed signs" "-99999999999999999999999998"
    (B.add (B.neg a) (B.of_int 1))

let test_mul () =
  let a = B.of_string "123456789012345678901234567890" in
  let b = B.of_string "98765432109876543210" in
  check_b "big product" "12193263113702179522496570642237463801111263526900"
    (B.mul a b);
  check_b "sign" "-6" (B.mul (B.of_int 2) (B.of_int (-3)));
  check_b "by zero" "0" (B.mul a B.zero);
  check_b "mul_int" "246913578024691357802469135780" (B.mul_int a 2)

let test_divmod () =
  let a = B.of_string "123456789012345678901234567890" in
  let b = B.of_string "98765432109876543210" in
  let q, r = B.divmod a b in
  Alcotest.(check bool) "reconstruct" true (B.equal a (B.add (B.mul q b) r));
  check_b "quotient" "1249999988" q;
  (* truncated semantics *)
  let q, r = B.divmod (B.of_int (-17)) (B.of_int 5) in
  Alcotest.(check int) "neg quot" (-3) (B.to_int_exn q);
  Alcotest.(check int) "neg rem" (-2) (B.to_int_exn r);
  Alcotest.(check int) "erem" 3 (B.to_int_exn (B.erem (B.of_int (-17)) (B.of_int 5)));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (B.divmod a B.zero))

let test_divmod_small () =
  let a = B.of_string "1000000000000000000000" in
  let q, r = B.divmod_small a 7 in
  Alcotest.(check int) "rem" 6 r;
  Alcotest.(check bool) "reconstruct" true
    (B.equal a (B.add (B.mul_int q 7) (B.of_int r)))

let test_shifts () =
  check_b "shl" "1208925819614629174706176" (B.shift_left B.one 80);
  check_b "shr" "1" (B.shift_right (B.shift_left B.one 80) 80);
  check_b "shr to zero" "0" (B.shift_right (B.of_int 5) 3);
  Alcotest.(check int) "num_bits 2^80" 81 (B.num_bits (B.shift_left B.one 80));
  Alcotest.(check int) "num_bits 0" 0 (B.num_bits B.zero);
  Alcotest.(check bool) "testbit" true (B.testbit (B.shift_left B.one 80) 80);
  Alcotest.(check bool) "testbit off" false (B.testbit (B.shift_left B.one 80) 79)

let test_pow () =
  check_b "2^100" "1267650600228229401496703205376" (B.pow B.two 100);
  check_b "x^0" "1" (B.pow (B.of_int 12345) 0);
  let p = B.of_string "1000003" in
  check_b "fermat" "1"
    (B.pow_mod (B.of_int 2) (B.pred p) p)

let test_gcd_inv () =
  check_b "gcd" "6" (B.gcd (B.of_int 48) (B.of_int 18));
  check_b "gcd neg" "6" (B.gcd (B.of_int (-48)) (B.of_int 18));
  let p = B.of_string "150511264542021332250918913" in
  let a = B.of_string "987654321987654321" in
  (match B.invert_mod a p with
  | Some inv ->
    Alcotest.(check bool) "a * a^-1 = 1" true
      (B.equal (B.erem (B.mul a inv) p) B.one)
  | None -> Alcotest.fail "expected invertible");
  Alcotest.(check bool) "non-invertible" true
    (B.invert_mod (B.of_int 6) (B.of_int 9) = None)

let test_primality () =
  let primes =
    [ "2"; "3"; "5"; "97"; "2013265921"; "150511264542021332250918913";
      "33695497968059012868259156637528181185301565537701404135482156946302720725221377" ]
  in
  List.iter
    (fun s ->
      Alcotest.(check bool) ("prime " ^ s) true
        (B.is_probable_prime (B.of_string s)))
    primes;
  let composites = [ "1"; "0"; "4"; "100"; "2013265923"; "150511264542021332250918915" ] in
  List.iter
    (fun s ->
      Alcotest.(check bool) ("composite " ^ s) false
        (B.is_probable_prime (B.of_string s)))
    composites;
  (* strong pseudoprime to base 2 must still be caught *)
  Alcotest.(check bool) "2047 = 23*89" false
    (B.is_probable_prime (B.of_int 2047))

let test_bytes () =
  let x = B.of_string "150511264542021332250918913" in
  let b = B.to_bytes_be x 11 in
  Alcotest.(check int) "width" 11 (Bytes.length b);
  Alcotest.(check bool) "roundtrip" true (B.equal (B.of_bytes_be b) x);
  Alcotest.check_raises "too narrow" (Invalid_argument "Bigint.to_bytes_be: does not fit")
    (fun () -> ignore (B.to_bytes_be x 10));
  Alcotest.(check bool) "zero pads" true
    (B.equal (B.of_bytes_be (B.to_bytes_be (B.of_int 7) 20)) (B.of_int 7))

let test_random () =
  let rng = ref 12345 in
  let rand_limb () =
    rng := ((!rng * 1103515245) + 12345) land 0x3FFFFFFF;
    !rng
  in
  let bound = B.of_string "1000000000000000000000" in
  for _ = 1 to 100 do
    let x = B.random_below ~rand_limb bound in
    Alcotest.(check bool) "in range" true
      (B.sign x >= 0 && B.compare x bound < 0)
  done;
  let x = B.random_bits ~rand_limb 100 in
  Alcotest.(check bool) "bits bound" true (B.num_bits x <= 100)

let test_montgomery () =
  let p = B.of_string "150511264542021332250918913" in
  let ctx = B.Mont.create p in
  Alcotest.(check bool) "modulus" true (B.equal (B.Mont.modulus ctx) p);
  let x = B.of_string "99999999999999999999" in
  let y = B.of_string "123456789123456789123" in
  let xm = B.Mont.to_mont ctx x and ym = B.Mont.to_mont ctx y in
  Alcotest.(check bool) "mul" true
    (B.equal (B.Mont.of_mont ctx (B.Mont.mul ctx xm ym)) (B.erem (B.mul x y) p));
  Alcotest.(check bool) "add" true
    (B.equal (B.Mont.of_mont ctx (B.Mont.add ctx xm ym)) (B.erem (B.add x y) p));
  Alcotest.(check bool) "sub" true
    (B.equal (B.Mont.of_mont ctx (B.Mont.sub ctx xm ym)) (B.erem (B.sub x y) p));
  Alcotest.(check bool) "neg" true
    (B.equal (B.Mont.of_mont ctx (B.Mont.neg ctx xm)) (B.erem (B.neg x) p));
  Alcotest.(check bool) "pow matches pow_mod" true
    (B.equal
       (B.Mont.of_mont ctx (B.Mont.pow ctx xm (B.of_int 12345)))
       (B.pow_mod x (B.of_int 12345) p));
  Alcotest.(check bool) "one" true
    (B.equal (B.Mont.of_mont ctx (B.Mont.one ctx)) B.one);
  Alcotest.(check bool) "zero detect" true
    (B.Mont.is_zero ctx (B.Mont.to_mont ctx p));
  Alcotest.check_raises "even modulus"
    (Invalid_argument "Bigint.Mont.create: modulus must be odd and >= 3")
    (fun () -> ignore (B.Mont.create (B.of_int 10)))

(* Knuth algorithm D's rare "add back" branch fires when the trial digit
   overestimates by one; max-limb patterns are the classic trigger. *)
let test_divmod_add_back_patterns () =
  let maxl = (1 lsl 31) - 1 in
  let of_limbs limbs =
    List.fold_left
      (fun acc l -> B.add (B.shift_left acc 31) (B.of_int l))
      B.zero (List.rev limbs)
  in
  let cases =
    [
      (* u with a zero middle limb over a divisor just above b/2 *)
      (of_limbs [ 0; 0; maxl; maxl ], of_limbs [ maxl; 1 lsl 30 ]);
      (of_limbs [ 0; 0; 0; maxl ], of_limbs [ 1; 1 lsl 30 ]);
      (of_limbs [ maxl; 0; maxl - 1; maxl ], of_limbs [ maxl; maxl ]);
      (of_limbs [ 0; maxl; 0; maxl ], of_limbs [ maxl; 0; 1 ]);
      (* divisor needing maximal normalization shift *)
      (of_limbs [ 123; 456; 789; 1 ], of_limbs [ maxl; 1 ]);
    ]
  in
  List.iter
    (fun (u, v) ->
      let q, r = B.divmod u v in
      Alcotest.(check bool) "reconstructs" true (B.equal u (B.add (B.mul q v) r));
      Alcotest.(check bool) "remainder in range" true
        (B.sign r >= 0 && B.compare r v < 0))
    cases

(* --------------------------- properties ---------------------------- *)

let gen_bigint =
  QCheck2.Gen.(
    let* nlimbs = int_range 0 6 in
    let* limbs = list_repeat nlimbs (int_bound 0x3FFFFFFF) in
    let* negate = bool in
    let v =
      List.fold_left
        (fun acc l -> B.add (B.shift_left acc 30) (B.of_int l))
        B.zero limbs
    in
    return (if negate then B.neg v else v))

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count:300 gen f)

let props =
  [
    prop "add commutes" (QCheck2.Gen.pair gen_bigint gen_bigint) (fun (a, b) ->
        B.equal (B.add a b) (B.add b a));
    prop "add associates" (QCheck2.Gen.triple gen_bigint gen_bigint gen_bigint)
      (fun (a, b, c) -> B.equal (B.add (B.add a b) c) (B.add a (B.add b c)));
    prop "sub inverse" (QCheck2.Gen.pair gen_bigint gen_bigint) (fun (a, b) ->
        B.equal (B.sub (B.add a b) b) a);
    prop "mul commutes" (QCheck2.Gen.pair gen_bigint gen_bigint) (fun (a, b) ->
        B.equal (B.mul a b) (B.mul b a));
    prop "mul distributes" (QCheck2.Gen.triple gen_bigint gen_bigint gen_bigint)
      (fun (a, b, c) ->
        B.equal (B.mul a (B.add b c)) (B.add (B.mul a b) (B.mul a c)));
    prop "divmod reconstructs" (QCheck2.Gen.pair gen_bigint gen_bigint)
      (fun (a, b) ->
        if B.is_zero b then true
        else begin
          let q, r = B.divmod a b in
          B.equal a (B.add (B.mul q b) r)
          && B.compare (B.abs r) (B.abs b) < 0
          && (B.is_zero r || B.sign r = B.sign a)
        end);
    prop "string roundtrip" gen_bigint (fun a ->
        B.equal a (B.of_string (B.to_string a)));
    prop "hex roundtrip" gen_bigint (fun a ->
        B.equal a (B.of_string (B.to_string_hex a)));
    prop "shift inverse" (QCheck2.Gen.pair gen_bigint (QCheck2.Gen.int_bound 100))
      (fun (a, k) ->
        let a = B.abs a in
        B.equal a (B.shift_right (B.shift_left a k) k));
    prop "compare antisymmetric" (QCheck2.Gen.pair gen_bigint gen_bigint)
      (fun (a, b) -> B.compare a b = -B.compare b a);
    prop "erem in range" (QCheck2.Gen.pair gen_bigint gen_bigint) (fun (a, b) ->
        if B.is_zero b then true
        else begin
          let r = B.erem a b in
          B.sign r >= 0 && B.compare r (B.abs b) < 0
        end);
  ]

let () =
  Alcotest.run "bigint"
    [
      ( "unit",
        [
          Alcotest.test_case "of/to int" `Quick test_of_to_int;
          Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
          Alcotest.test_case "hex" `Quick test_hex;
          Alcotest.test_case "add/sub" `Quick test_add_sub;
          Alcotest.test_case "mul" `Quick test_mul;
          Alcotest.test_case "divmod" `Quick test_divmod;
          Alcotest.test_case "divmod_small" `Quick test_divmod_small;
          Alcotest.test_case "divmod add-back patterns" `Quick
            test_divmod_add_back_patterns;
          Alcotest.test_case "shifts/bits" `Quick test_shifts;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "gcd/invert" `Quick test_gcd_inv;
          Alcotest.test_case "primality" `Quick test_primality;
          Alcotest.test_case "bytes" `Quick test_bytes;
          Alcotest.test_case "random" `Quick test_random;
          Alcotest.test_case "montgomery" `Quick test_montgomery;
        ] );
      ("properties", props);
    ]

(* AFE tests (paper §5, Appendices F/G): for every encoding we check
   correctness of the encode→aggregate→decode path, soundness of the Valid
   circuit (well-formed encodings accepted, malformed rejected), and
   structural invariants (arity, truncation). The regression and count-min
   AFEs additionally get end-to-end SNIP checks. *)

module Rng = Prio_crypto.Rng
module B = Prio_bigint.Bigint
module F = Prio_field.F87
module A = Prio_afe.Afe.Make (F)
module Sum = Prio_afe.Sum.Make (F)
module Stats = Prio_afe.Stats.Make (F)
module Bool = Prio_afe.Boolean.Make (F)
module MM = Prio_afe.Minmax.Make (F)
module H = Prio_afe.Histogram.Make (F)
module Pop = Prio_afe.Popular.Make (F)
module CM = Prio_afe.Countmin.Make (F)
module Reg = Prio_afe.Regression.Make (F)
module Prod = Prio_afe.Product.Make (F)
module Snip = Prio_snip.Snip.Make (F)

let rng = Rng.of_string_seed "afe-tests"

let check_well_formed name afe =
  Alcotest.(check bool) (name ^ " well-formed") true (A.well_formed afe)

let check_encodings_valid name afe inputs =
  List.iter
    (fun x ->
      Alcotest.(check bool) (name ^ " encoding valid") true
        (A.valid afe (afe.A.encode ~rng x)))
    inputs

(* ------------------------------- sum -------------------------------- *)

let test_sum () =
  let afe = Sum.sum ~bits:4 in
  check_well_formed "sum" afe;
  Alcotest.(check int) "k" 5 afe.A.encoding_len;
  Alcotest.(check int) "k'" 1 afe.A.trunc_len;
  Alcotest.(check int) "mul gates = bits" 4 (A.C.num_mul_gates afe.A.circuit);
  check_encodings_valid "sum" afe [ 0; 1; 7; 15 ];
  Alcotest.(check string) "total" "34"
    (B.to_string (A.run_plain afe ~rng [ 3; 7; 15; 0; 9 ]));
  Alcotest.(check string) "empty sum" "0" (B.to_string (A.run_plain afe ~rng []));
  (* encode range check *)
  Alcotest.(check bool) "rejects 16" true
    (match afe.A.encode ~rng 16 with exception Invalid_argument _ -> true | _ -> false);
  (* malformed encodings rejected by the circuit *)
  let e = afe.A.encode ~rng 11 in
  let bad = Array.copy e in
  bad.(0) <- F.of_int 12;
  Alcotest.(check bool) "value/bits mismatch" false (A.valid afe bad);
  let bad2 = Array.copy e in
  bad2.(1) <- F.two;
  Alcotest.(check bool) "non-bit digit" false (A.valid afe bad2)

let test_mean () =
  let afe = Sum.mean ~bits:8 in
  let m = A.run_plain afe ~rng [ 10; 20; 30; 60 ] in
  Alcotest.(check (float 1e-9)) "mean" 30.0 m

let test_count () =
  let afe = Sum.count_bits in
  Alcotest.(check int) "count" 3 (A.run_plain afe ~rng [ true; false; true; true ])

(* ----------------------------- variance ----------------------------- *)

let test_variance () =
  let afe = Stats.variance ~bits:6 in
  check_well_formed "variance" afe;
  Alcotest.(check int) "mul gates = bits + 1" 7 (A.C.num_mul_gates afe.A.circuit);
  check_encodings_valid "variance" afe [ 0; 5; 63 ];
  let m = A.run_plain afe ~rng [ 2; 4; 4; 4; 5; 5; 7; 9 ] in
  Alcotest.(check (float 1e-9)) "mean" 5.0 m.Stats.mean;
  Alcotest.(check (float 1e-9)) "variance" 4.0 m.Stats.variance;
  Alcotest.(check (float 1e-9)) "stddev" 2.0 m.Stats.stddev;
  (* an encoding whose second component is not the square is rejected *)
  let e = afe.A.encode ~rng 5 in
  let bad = Array.copy e in
  bad.(1) <- F.of_int 26;
  Alcotest.(check bool) "x² mismatch" false (A.valid afe bad)

(* ----------------------------- booleans ----------------------------- *)

let test_bool_or_and () =
  let bor = Bool.bool_or () and band = Bool.bool_and () in
  check_well_formed "or" bor;
  Alcotest.(check int) "or has no mul gates" 0 (A.C.num_mul_gates bor.A.circuit);
  List.iter
    (fun (inputs, expect) ->
      Alcotest.(check bool) "or" expect (A.run_plain bor ~rng inputs))
    [ ([ false; false; false ], false); ([ false; true ], true);
      ([ true; true; true ], true); ([], false) ];
  List.iter
    (fun (inputs, expect) ->
      Alcotest.(check bool) "and" expect (A.run_plain band ~rng inputs))
    [ ([ true; true; true ], true); ([ true; false ], false); ([], true) ]

let test_or_randomized_encoding () =
  (* two encodings of `true` must (whp) differ — the randomization is what
     gives or-privacy *)
  let bor = Bool.bool_or () in
  let a = bor.A.encode ~rng true and b = bor.A.encode ~rng true in
  Alcotest.(check bool) "distinct" false (F.equal a.(0) b.(0));
  let z = bor.A.encode ~rng false in
  Alcotest.(check bool) "false is zeros" true (Array.for_all F.is_zero z)

let test_sets () =
  let u = Bool.set_union ~universe:6 () in
  let s1 = [| true; false; true; false; false; false |] in
  let s2 = [| false; false; true; true; false; false |] in
  Alcotest.(check (array bool)) "union"
    [| true; false; true; true; false; false |]
    (A.run_plain u ~rng [ s1; s2 ]);
  let i = Bool.set_intersection ~universe:6 () in
  Alcotest.(check (array bool)) "intersection"
    [| false; false; true; false; false; false |]
    (A.run_plain i ~rng [ s1; s2 ])

(* ----------------------------- min/max ------------------------------ *)

let test_minmax () =
  let mx = MM.max_small ~range:32 () and mn = MM.min_small ~range:32 () in
  Alcotest.(check int) "max" 29 (A.run_plain mx ~rng [ 3; 29; 17 ]);
  Alcotest.(check int) "min" 3 (A.run_plain mn ~rng [ 3; 29; 17 ]);
  Alcotest.(check int) "singleton max" 7 (A.run_plain mx ~rng [ 7 ]);
  Alcotest.(check int) "empty max" (-1) (A.run_plain mx ~rng []);
  Alcotest.(check int) "zero min" 0 (A.run_plain mn ~rng [ 0; 5 ])

let test_approx_max () =
  let afe = MM.approx_max ~c:2 ~range:1_000_000 () in
  check_well_formed "approx-max" afe;
  List.iter
    (fun values ->
      let true_max = List.fold_left Stdlib.max 0 values in
      let approx = A.run_plain afe ~rng values in
      (* the result is the lower edge of the occupied bin: the true maximum
         must lie inside that bin, i.e. within a factor of c = 2 *)
      let upper = if approx = 0 then 1 else (approx * 2) - 1 in
      Alcotest.(check bool)
        (Printf.sprintf "within factor 2 (true=%d approx=%d)" true_max approx)
        true
        (approx <= true_max && true_max <= upper))
    [ [ 5; 100; 37 ]; [ 1 ]; [ 999_999; 3 ]; [ 0; 0 ] ]

(* ---------------------------- histogram ----------------------------- *)

let test_histogram () =
  let afe = H.histogram ~buckets:5 in
  check_well_formed "histogram" afe;
  Alcotest.(check int) "mul gates = buckets" 5 (A.C.num_mul_gates afe.A.circuit);
  check_encodings_valid "histogram" afe [ 0; 2; 4 ];
  let counts = A.run_plain afe ~rng [ 0; 1; 1; 4; 4; 4 ] in
  Alcotest.(check (array int)) "counts" [| 1; 2; 0; 0; 3 |] counts;
  (* two-hot encoding is rejected *)
  let bad = Array.make 5 F.zero in
  bad.(0) <- F.one;
  bad.(1) <- F.one;
  Alcotest.(check bool) "two-hot rejected" false (A.valid afe bad);
  Alcotest.(check bool) "all-zero rejected" false
    (A.valid afe (Array.make 5 F.zero))

let test_quantiles () =
  Alcotest.(check int) "median" 1 (H.quantile_of_counts [| 1; 2; 0; 0; 3 |] 0.5);
  Alcotest.(check int) "p100" 4 (H.quantile_of_counts [| 1; 2; 0; 0; 3 |] 1.0);
  Alcotest.(check int) "p0+" 0 (H.quantile_of_counts [| 1; 2; 0; 0; 3 |] 0.01);
  Alcotest.(check int) "empty" (-1) (H.quantile_of_counts [| 0; 0 |] 0.5)

(* ----------------------------- popular ------------------------------ *)

let test_popular () =
  let afe = Pop.most_popular ~bits:8 in
  check_well_formed "popular" afe;
  let target = Pop.bits_of_string "10110010" in
  let other = Pop.bits_of_string "01001101" in
  let res = A.run_plain afe ~rng [ target; target; other; target; other ] in
  Alcotest.(check string) "majority string" "10110010" (Pop.string_of_bits res);
  (* non-bit coordinate rejected *)
  let bad = Array.make 8 F.zero in
  bad.(3) <- F.two;
  Alcotest.(check bool) "non-bit rejected" false (A.valid afe bad)

let test_popular_buckets () =
  let bits = 12 and buckets = 8 in
  let afe = Pop.popular_buckets ~bits ~buckets in
  check_well_formed "popular-buckets" afe;
  (* three strings, each ~25% popular — below the single-majority bar but
     recoverable per-bucket *)
  let strings = [ "101100101100"; "010011010011"; "111000111000" ] in
  let inputs =
    List.concat_map (fun s -> List.init 10 (fun _ -> Pop.bits_of_string s)) strings
    @ List.init 6 (fun i -> Pop.bits_of_string (if i mod 2 = 0 then "000000000001" else "100000000000"))
  in
  let found = A.run_plain afe ~rng inputs in
  List.iter
    (fun s ->
      Alcotest.(check bool) ("recovers " ^ s) true
        (List.exists (fun (pop, cand) -> cand = s && pop >= 10) found))
    strings;
  (* populations sum to the number of clients *)
  let total_pop = List.fold_left (fun acc (p, _) -> acc + p) 0 found in
  Alcotest.(check int) "populations total" (List.length inputs) total_pop;
  (* a two-bucket vote is rejected by the circuit *)
  let bad = afe.A.encode ~rng (Pop.bits_of_string "101100101100") in
  let other_bucket = if F.is_zero bad.(0) then 0 else 1 in
  bad.(other_bucket) <- F.one;
  Alcotest.(check bool) "bucket stuffing rejected" false (A.valid afe bad)

(* ---------------------------- count-min ----------------------------- *)

let test_countmin () =
  let params = CM.{ depth = 5; width = 64 } in
  let afe = CM.count_min ~params in
  check_well_formed "count-min" afe;
  Alcotest.(check int) "mul gates = depth*width" (5 * 64)
    (A.C.num_mul_gates afe.A.circuit);
  let keys =
    List.concat
      [ List.init 10 (fun _ -> "popular.example.com");
        List.init 3 (fun _ -> "rare.example.org"); [ "one.example.net" ] ]
  in
  let sk = A.run_plain afe ~rng keys in
  let n = List.length keys in
  let check_key key truth =
    let est = CM.query sk key in
    Alcotest.(check bool)
      (Printf.sprintf "%s: %d <= est=%d <= %d + eps*n" key truth est truth)
      true
      (est >= truth && est <= truth + n)
  in
  check_key "popular.example.com" 10;
  check_key "rare.example.org" 3;
  check_key "one.example.net" 1;
  check_key "absent.example.io" 0

let test_countmin_params () =
  let p = CM.params_of_eps_delta ~eps:0.1 ~delta:(2. ** -10.) in
  Alcotest.(check int) "depth = ceil(ln 2^10)" 7 p.CM.depth;
  Alcotest.(check int) "width = ceil(e/eps)" 28 p.CM.width;
  (* hashes are stable and in range *)
  let params = CM.{ depth = 3; width = 17 } in
  for row = 0 to 2 do
    let h1 = CM.hash ~params ~row "key" and h2 = CM.hash ~params ~row "key" in
    Alcotest.(check int) "stable" h1 h2;
    Alcotest.(check bool) "in range" true (h1 >= 0 && h1 < 17)
  done;
  Alcotest.(check bool) "rows differ (whp)" true
    (CM.hash ~params ~row:0 "key" <> CM.hash ~params ~row:1 "key"
    || CM.hash ~params ~row:0 "other" <> CM.hash ~params ~row:1 "other")

(* ---------------------------- regression ---------------------------- *)

let test_regression_exact_fit () =
  let afe = Reg.least_squares ~d:3 ~bits:8 in
  check_well_formed "regression" afe;
  (* exact linear data: y = 7 + x1 + 2 x2 + 3 x3 *)
  let exs =
    List.init 25 (fun i ->
        let x1 = (i * 7) mod 40 and x2 = (i * 13) mod 30 and x3 = (i * 3) mod 20 in
        Reg.{ features = [| x1; x2; x3 |]; target = 7 + x1 + (2 * x2) + (3 * x3) })
  in
  let c = A.run_plain afe ~rng exs in
  Alcotest.(check (float 1e-6)) "c0" 7. c.(0);
  Alcotest.(check (float 1e-6)) "c1" 1. c.(1);
  Alcotest.(check (float 1e-6)) "c2" 2. c.(2);
  Alcotest.(check (float 1e-6)) "c3" 3. c.(3)

let test_regression_least_squares_property () =
  (* noisy data: the recovered fit must have residuals orthogonal to the
     design matrix (the defining property of least squares) *)
  let d = 2 in
  let afe = Reg.least_squares ~d ~bits:10 in
  let exs =
    List.init 40 (fun i ->
        let x1 = (i * 17) mod 100 and x2 = (i * 29) mod 90 in
        let noise = (i * 31 mod 11) - 5 in
        Reg.{ features = [| x1; x2 |]; target = Stdlib.max 0 (50 + (2 * x1) + x2 + noise) })
  in
  let c = A.run_plain afe ~rng exs in
  let resid ex =
    float_of_int ex.Reg.target
    -. (c.(0) +. (c.(1) *. float_of_int ex.Reg.features.(0))
        +. (c.(2) *. float_of_int ex.Reg.features.(1)))
  in
  let dot f = List.fold_left (fun acc ex -> acc +. (resid ex *. f ex)) 0. exs in
  Alcotest.(check bool) "sum resid ~ 0" true (abs_float (dot (fun _ -> 1.)) < 1e-5);
  Alcotest.(check bool) "x1 . resid ~ 0" true
    (abs_float (dot (fun e -> float_of_int e.Reg.features.(0))) < 1e-3);
  Alcotest.(check bool) "x2 . resid ~ 0" true
    (abs_float (dot (fun e -> float_of_int e.Reg.features.(1))) < 1e-3)

let test_regression_circuit_soundness () =
  let afe = Reg.least_squares ~d:2 ~bits:6 in
  let e = afe.A.encode ~rng Reg.{ features = [| 10; 20 |]; target = 53 } in
  Alcotest.(check bool) "honest valid" true (A.valid afe e);
  (* corrupt the x1*x2 cross term *)
  let bad = Array.copy e in
  bad.(3) <- F.add bad.(3) F.one;
  Alcotest.(check bool) "cross-term mismatch" false (A.valid afe bad);
  (* corrupt the x*y moment *)
  let bad2 = Array.copy e in
  bad2.(Reg.idx_xy 2 0) <- F.add bad2.(Reg.idx_xy 2 0) F.one;
  Alcotest.(check bool) "xy mismatch" false (A.valid afe bad2)

let test_regression_snip_end_to_end () =
  let afe = Reg.least_squares ~d:2 ~bits:8 in
  let ctx = Snip.make_batch_ctx ~rng ~circuit:afe.A.circuit ~num_servers:5 in
  let enc = afe.A.encode ~rng Reg.{ features = [| 100; 200 |]; target = 77 } in
  let subs = Snip.prove ~rng ~circuit:afe.A.circuit ~num_servers:5 ~inputs:enc in
  Alcotest.(check bool) "snip accepts" true (Snip.verify_all ctx subs);
  let bad = Array.copy enc in
  bad.(0) <- F.add bad.(0) F.one;
  let subs = Snip.prove ~rng ~circuit:afe.A.circuit ~num_servers:5 ~inputs:bad in
  Alcotest.(check bool) "snip rejects" false (Snip.verify_all ctx subs)

let test_regression_gate_counts () =
  (* the BrCa configuration of Figure 7: d=30 features of 14-bit values
     gives ~930 multiplication gates *)
  let afe = Reg.least_squares ~d:30 ~bits:14 in
  Alcotest.(check int) "BrCa-scale gate count" 929
    (A.C.num_mul_gates afe.A.circuit)

let test_r_squared () =
  let model = Reg.{ intercept = 3; coefs = [| 2; 1 |]; frac_bits = 0 } in
  let afe = Reg.r_squared ~model ~bits:8 in
  check_well_formed "r2" afe;
  let perfect =
    List.init 20 (fun i ->
        let x1 = (i * 7) mod 50 and x2 = (i * 13) mod 40 in
        Reg.{ features = [| x1; x2 |]; target = 3 + (2 * x1) + x2 })
  in
  Alcotest.(check (float 1e-9)) "perfect model" 1.0 (A.run_plain afe ~rng perfect);
  (* a bad model scores below 1 *)
  let bad_model = Reg.{ intercept = 0; coefs = [| 0; 0 |]; frac_bits = 0 } in
  let afe_bad = Reg.r_squared ~model:bad_model ~bits:8 in
  let r2 = A.run_plain afe_bad ~rng perfect in
  Alcotest.(check bool) "constant-zero model scores poorly" true (r2 < 0.5);
  (* prediction helper *)
  Alcotest.(check (float 1e-9)) "predict" 25.
    (Reg.predict model [| 10; 2 |])

(* ---------------------------- combinators --------------------------- *)

let test_pair_combinator () =
  (* the paper's browser deployment in miniature: average CPU (sum of 7-bit
     percentages) plus a URL histogram, in ONE submission with ONE SNIP *)
  let cpu = Sum.mean ~bits:7 in
  let urls = H.histogram ~buckets:8 in
  let both = A.pair cpu urls in
  check_well_formed "pair" both;
  Alcotest.(check int) "gate counts add" 15 (A.C.num_mul_gates both.A.circuit);
  Alcotest.(check int) "trunc adds" (1 + 8) both.A.trunc_len;
  let inputs = [ (50, 2); (70, 2); (90, 5) ] in
  let mean, counts = A.run_plain both ~rng inputs in
  Alcotest.(check (float 1e-9)) "cpu mean" 70. mean;
  Alcotest.(check (array int)) "url counts" [| 0; 0; 2; 0; 0; 1; 0; 0 |] counts;
  (* each half's constraints still bite in the combined circuit *)
  let enc = both.A.encode ~rng (50, 3) in
  Alcotest.(check bool) "combined encoding valid" true (A.valid both enc);
  let bad = Array.copy enc in
  bad.(0) <- F.of_int 200;
  (* cpu value out of sync with its bits *)
  Alcotest.(check bool) "cpu half enforced" false (A.valid both bad);
  let bad2 = both.A.encode ~rng (50, 3) in
  bad2.(1 + 4) <- F.add bad2.(1 + 4) F.one;
  (* extra URL vote *)
  Alcotest.(check bool) "histogram half enforced" false (A.valid both bad2);
  (* and the combined circuit is SNIP-provable *)
  let ctx = Snip.make_batch_ctx ~rng ~circuit:both.A.circuit ~num_servers:3 in
  let subs = Snip.prove ~rng ~circuit:both.A.circuit ~num_servers:3 ~inputs:enc in
  Alcotest.(check bool) "snip over pair" true (Snip.verify_all ctx subs)

let test_map_contramap () =
  let celsius_sum =
    A.contramap_input (fun fahrenheit -> (fahrenheit - 32) * 5 / 9) (Sum.sum ~bits:7)
  in
  let v = A.run_plain celsius_sum ~rng [ 32; 212 ] in
  Alcotest.(check string) "contramap" "100" (B.to_string v);
  let doubled = A.map_output (fun b -> B.mul_int b 2) (Sum.sum ~bits:4) in
  Alcotest.(check string) "map_output" "20" (B.to_string (A.run_plain doubled ~rng [ 4; 6 ]))

(* ------------------------------ product ----------------------------- *)

let test_product_geomean () =
  let p = Prod.product ~bits:20 ~frac_bits:8 in
  let v = A.run_plain p ~rng [ 2.; 8.; 4. ] in
  Alcotest.(check bool) "product ~ 64" true (abs_float (v -. 64.) < 1.);
  let g = Prod.geometric_mean ~bits:20 ~frac_bits:8 in
  let v = A.run_plain g ~rng [ 2.; 8. ] in
  Alcotest.(check bool) "geomean ~ 4" true (abs_float (v -. 4.) < 0.05);
  Alcotest.(check bool) "rejects non-positive" true
    (match p.A.encode ~rng 0. with exception Invalid_argument _ -> true | _ -> false)

(* ---------------------------- fixed point ---------------------------- *)

module Fx = Prio_afe.Fixed_point.Make (F)

let test_fixed_point () =
  let r = Fx.{ int_bits = 8; frac_bits = 6 } in
  (* representation roundtrip within one quantum *)
  List.iter
    (fun v ->
      let back = Fx.of_int r (Fx.to_int r v) in
      Alcotest.(check bool)
        (Printf.sprintf "quantize %.4f -> %.4f" v back)
        true
        (abs_float (back -. v) <= Fx.quantum r))
    [ 0.; 0.25; 3.141; 99.99; 255.9 ];
  Alcotest.(check bool) "rejects negatives" true
    (match Fx.to_int r (-1.) with exception Invalid_argument _ -> true | _ -> false);
  Alcotest.(check bool) "rejects too large" true
    (match Fx.to_int r 256. with exception Invalid_argument _ -> true | _ -> false);
  (* private sums and means of reals *)
  let values = [ 1.5; 2.25; 0.125; 10.0 ] in
  let s = A.run_plain (Fx.sum r) ~rng values in
  Alcotest.(check (float 1e-6)) "sum" 13.875 s;
  let m = A.run_plain (Fx.mean r) ~rng values in
  Alcotest.(check (float 1e-6)) "mean" 3.46875 m;
  (* field sizing check: F87 holds ~2^59 clients of 14-bit values *)
  Alcotest.(check bool) "f87 fits a billion clients" true
    (Fx.field_fits Fx.{ int_bits = 8; frac_bits = 6 } ~clients:1_000_000_000)

let () =
  Alcotest.run "afe"
    [
      ( "sum/mean",
        [
          Alcotest.test_case "sum" `Quick test_sum;
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "count" `Quick test_count;
        ] );
      ("variance", [ Alcotest.test_case "variance/stddev" `Quick test_variance ]);
      ( "boolean",
        [
          Alcotest.test_case "or/and" `Quick test_bool_or_and;
          Alcotest.test_case "randomized encoding" `Quick test_or_randomized_encoding;
          Alcotest.test_case "sets" `Quick test_sets;
        ] );
      ( "minmax",
        [
          Alcotest.test_case "exact" `Quick test_minmax;
          Alcotest.test_case "approximate" `Quick test_approx_max;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "counts" `Quick test_histogram;
          Alcotest.test_case "quantiles" `Quick test_quantiles;
        ] );
      ( "popular",
        [
          Alcotest.test_case "majority string" `Quick test_popular;
          Alcotest.test_case "bucketed (App. G)" `Quick test_popular_buckets;
        ] );
      ( "countmin",
        [
          Alcotest.test_case "estimates" `Quick test_countmin;
          Alcotest.test_case "parameters/hashing" `Quick test_countmin_params;
        ] );
      ( "regression",
        [
          Alcotest.test_case "exact fit" `Quick test_regression_exact_fit;
          Alcotest.test_case "least-squares property" `Quick
            test_regression_least_squares_property;
          Alcotest.test_case "circuit soundness" `Quick test_regression_circuit_soundness;
          Alcotest.test_case "snip end-to-end" `Quick test_regression_snip_end_to_end;
          Alcotest.test_case "paper gate counts" `Quick test_regression_gate_counts;
          Alcotest.test_case "r-squared" `Quick test_r_squared;
        ] );
      ( "combinators",
        [
          Alcotest.test_case "pair" `Quick test_pair_combinator;
          Alcotest.test_case "map/contramap" `Quick test_map_contramap;
        ] );
      ("product", [ Alcotest.test_case "product/geomean" `Quick test_product_geomean ]);
      ("fixed point", [ Alcotest.test_case "reals" `Quick test_fixed_point ]);
    ]

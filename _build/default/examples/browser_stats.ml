(* Browser statistics (paper §6.2): the RAPPOR-style telemetry that
   Chromium collects — approximate frequency counts of homepage URLs plus
   detection of an unusually popular (potentially hijacked) homepage —
   done with cryptographic privacy instead of randomized response.

   Two collections run side by side:
   - a count-min sketch AFE for per-URL frequency estimates, and
   - the most-popular-string AFE (Appendix G) that recovers a homepage
     outright when a majority of clients share it.

   Run with: dune exec examples/browser_stats.exe *)

open Core
module P = Prio.Make (Prio.F87)
module CM = P.Afe_countmin
module Pop = P.Afe_popular

let homepages =
  [
    ("https://search.example", 55);
    ("https://news.example", 20);
    ("https://social.example", 12);
    ("https://hijacker.example", 8);
    ("https://mail.example", 5);
  ]

let () =
  let rng = Prio.Rng.of_string_seed "browser-example" in

  (* ---- approximate URL frequencies via count-min --------------------- *)
  let params = CM.params_of_eps_delta ~eps:0.05 ~delta:0.001 in
  let afe = CM.count_min ~params in
  Printf.printf "count-min: depth=%d width=%d (%d x-gates)\n" params.CM.depth
    params.CM.width
    (P.Circuit.num_mul_gates afe.P.Afe.circuit);
  let deployment = P.deploy ~rng ~num_servers:5 afe in
  let visits =
    List.concat_map (fun (url, n) -> List.init n (fun _ -> url)) homepages
  in
  let sketch, stats = P.collect deployment visits in
  Printf.printf "clients: %d   accepted: %d\n\n" (List.length visits)
    stats.P.accepted;
  Printf.printf "%-28s %8s %9s\n" "homepage" "true" "estimate";
  List.iter
    (fun (url, n) ->
      Printf.printf "%-28s %8d %9d\n" url n (CM.query sketch url))
    homepages;
  Printf.printf "%-28s %8d %9d\n\n" "https://never-seen.example" 0
    (CM.query sketch "https://never-seen.example");

  (* ---- majority homepage recovery ------------------------------------ *)
  let bits = 24 in
  let encode_url url =
    (* hash the URL to a short fingerprint string of bits *)
    let digest = Prio.Sha256.digest_string url in
    Array.init bits (fun i ->
        Char.code (Bytes.get digest (i / 8)) lsr (i mod 8) land 1 = 1)
  in
  let pop_afe = Pop.most_popular ~bits in
  let pop_deployment = P.deploy ~rng ~num_servers:5 pop_afe in
  let majority_bits, _ = P.collect pop_deployment (List.map encode_url visits) in
  let winner =
    List.find_opt
      (fun (url, _) -> encode_url url = majority_bits)
      homepages
  in
  (match winner with
  | Some (url, share) ->
    Printf.printf "majority homepage recovered: %s (%d%% of clients)\n" url share
  | None ->
    Printf.printf "no single homepage has majority support (fingerprint %s)\n"
      (Pop.string_of_bits majority_bits));
  print_endline
    "(the paper's robustness point: a hijacker with 8% of clients cannot\n\
    \ forge a majority — each malicious client shifts each bit count by at\n\
    \ most one)"

(* A real multi-process deployment: five Prio server processes on loopback
   TCP sockets, clients uploading sealed packets over the network, the
   leader driving SNIP verification over persistent server-to-server
   connections — the shape of the paper's five-data-center cluster, on one
   machine.

   Run with: dune exec examples/tcp_deployment.exe *)

open Core
module P = Prio.Make (Prio.F87)
module Net = P.Net

let () =
  let rng = Prio.Rng.of_string_seed "tcp-example" in
  let afe = P.Afe_sum.sum ~bits:8 in
  let cfg =
    Net.
      {
        circuit = afe.P.Afe.circuit;
        trunc_len = afe.P.Afe.trunc_len;
        num_servers = 5;
        master = Prio.Rng.bytes rng 32;
        batch_seed = Prio.Rng.bytes rng 32;
      }
  in
  let d = Net.launch cfg in
  Printf.printf "launched %d server processes (pids:%s)\n" cfg.Net.num_servers
    (Array.fold_left (fun acc pid -> acc ^ " " ^ string_of_int pid) "" d.Net.pids);

  let values = List.init 25 (fun i -> (i * 13) mod 256) in
  let accepted = ref 0 in
  List.iteri
    (fun i x ->
      if Net.submit d ~rng ~client_id:i (afe.P.Afe.encode ~rng x) then incr accepted)
    values;
  Printf.printf "uploaded %d submissions over TCP, %d accepted\n"
    (List.length values) !accepted;

  (* a malicious client tries its luck against the real wire protocol *)
  let bad = afe.P.Afe.encode ~rng 3 in
  bad.(0) <- P.Field.of_int 100_000;
  let cheater_ok = Net.submit d ~rng ~client_id:9999 bad in
  Printf.printf "cheating client accepted: %b\n" cheater_ok;

  let total = afe.P.Afe.decode ~n:!accepted (Net.collect_aggregate d) in
  let expect = List.fold_left ( + ) 0 values in
  Printf.printf "aggregate: %s (expected %d)\n" (Prio.Bigint.to_string total) expect;
  Net.shutdown d;
  print_endline "servers shut down cleanly"

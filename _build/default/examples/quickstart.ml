(* Quickstart: the paper's §3 motivating example, upgraded to the full
   system. A health-app vendor wants to count how many users have a
   medical condition without learning who does.

   Run with: dune exec examples/quickstart.exe *)

open Core

(* Every component is a functor over the field; the paper's default is an
   87-bit FFT-friendly field. *)
module P = Prio.Make (Prio.F87)

let () =
  let rng = Prio.Rng.of_string_seed "quickstart" in

  (* The aggregation function: how many clients hold a `true`? The AFE
     packages Encode, the Valid circuit and Decode. *)
  let afe = P.Afe_sum.count_bits in

  (* Five servers, as in the paper's deployment: privacy holds as long as
     any one of them is honest. *)
  let deployment = P.deploy ~rng ~num_servers:5 afe in

  (* Each client's private bit — whether they have the condition. *)
  let private_bits =
    [ true; false; true; true; false; false; false; true; false; true ]
  in

  (* One call runs the whole pipeline per client: AFE-encode, secret-share
     (PRG-compressed), attach a SNIP proof, seal a packet per server; the
     servers verify every submission and accumulate the valid ones. *)
  let count, stats = P.collect deployment private_bits in

  Printf.printf "clients:                 %d\n" (List.length private_bits);
  Printf.printf "affected (aggregate):    %d\n" count;
  Printf.printf "submissions accepted:    %d\n" stats.P.accepted;
  Printf.printf "submissions rejected:    %d\n" stats.P.rejected;
  Printf.printf "server-to-server bytes:  %d\n" stats.P.server_bytes;

  (* Robustness: a malicious client cannot shift the count by more than 1.
     Here one tries to add 15,000 by sending a non-bit value. *)
  let bad_encoding = afe.P.Afe.encode ~rng true in
  bad_encoding.(0) <- P.Field.of_int 15_000;
  let packets =
    P.Client.submit ~rng
      ~mode:(P.Cluster.client_mode deployment.P.cluster)
      ~num_servers:5 ~client_id:999
      ~master:deployment.P.cluster.P.Cluster.master bad_encoding
  in
  let accepted = P.Cluster.submit deployment.P.cluster ~client_id:999 packets in
  Printf.printf "cheating client accepted: %b (the SNIP caught it)\n" accepted;

  let count', _ = P.publish deployment in
  Printf.printf "count after attack:      %d (unchanged)\n" count'

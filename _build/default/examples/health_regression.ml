(* Health-data modeling (paper §5.3, §6.3): train a least-squares linear
   model on private client health records without the servers ever seeing
   a record, then privately evaluate the model's R² on the same population.

   The synthetic cohort mimics the paper's heart-disease configuration:
   each client holds a feature vector (age, resting blood pressure,
   cholesterol) plus a target (maximum heart rate), all as integers.

   Run with: dune exec examples/health_regression.exe *)

open Core
module P = Prio.Make (Prio.F265)
module Reg = P.Afe_regression

let dims = 3
let bits = 10 (* features fit in 10 bits *)

(* ground-truth population model used to synthesize records:
   max_hr = 210 - age + bp/8 - chol/16 + noise *)
let synthesize rng i =
  let age = 30 + Prio.Rng.int_below rng 50 in
  let bp = 100 + Prio.Rng.int_below rng 80 in
  let chol = 150 + Prio.Rng.int_below rng 200 in
  let noise = Prio.Rng.int_range rng (-4) 4 in
  ignore i;
  let max_hr = 210 - age + (bp / 8) - (chol / 16) + noise in
  Reg.{ features = [| age; bp; chol |]; target = max_hr }

let () =
  let rng = Prio.Rng.of_string_seed "health-example" in
  let afe = Reg.least_squares ~d:dims ~bits in
  Printf.printf "regression AFE: d=%d, b=%d bits, encoding %d field elements, %d x-gates\n\n"
    dims bits afe.P.Afe.encoding_len
    (P.Circuit.num_mul_gates afe.P.Afe.circuit);

  let deployment = P.deploy ~rng ~num_servers:5 afe in
  let cohort = List.init 200 (synthesize rng) in
  let coefs, stats = P.collect deployment cohort in

  Printf.printf "clients: %d   accepted: %d   rejected: %d\n" 200 stats.P.accepted
    stats.P.rejected;
  Printf.printf "private least-squares fit:\n";
  Printf.printf "  max_hr = %.2f %+.3f*age %+.3f*bp %+.3f*chol\n" coefs.(0)
    coefs.(1) coefs.(2) coefs.(3);
  Printf.printf "  (population truth:  210 -1.000*age +0.125*bp -0.0625*chol)\n\n";

  (* Now publish the fitted model and privately measure its quality: the
     R² AFE of Appendix G. Scale coefficients to 1/64 fixed point. *)
  let frac_bits = 6 in
  let scale = float_of_int (1 lsl frac_bits) in
  let model =
    Reg.
      {
        intercept = int_of_float (Float.round (coefs.(0) *. scale));
        coefs =
          Array.init dims (fun j ->
              int_of_float (Float.round (coefs.(j + 1) *. scale)));
        frac_bits;
      }
  in
  let r2_afe = Reg.r_squared ~model ~bits in
  let r2_deployment = P.deploy ~rng ~num_servers:5 r2_afe in
  let r2, _ = P.collect r2_deployment cohort in
  Printf.printf "private R² of the published model on the cohort: %.4f\n" r2;
  Printf.printf "(close to 1: the linear model explains the synthetic data)\n"

examples/browser_stats.mli:

examples/health_regression.ml: Array Core Float List Printf Prio

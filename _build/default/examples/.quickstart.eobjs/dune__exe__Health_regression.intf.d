examples/health_regression.mli:

examples/quickstart.mli:

examples/quickstart.ml: Array Core List Printf Prio

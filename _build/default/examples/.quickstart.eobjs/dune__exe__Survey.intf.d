examples/survey.mli:

examples/survey.ml: Array Core List Printf Prio

examples/cell_signal.ml: Array Core List Printf Prio

examples/spam_filter.ml: Array Core List Printf Prio

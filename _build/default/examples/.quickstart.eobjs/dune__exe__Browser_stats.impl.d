examples/browser_stats.ml: Array Bytes Char Core List Printf Prio

examples/tcp_deployment.mli:

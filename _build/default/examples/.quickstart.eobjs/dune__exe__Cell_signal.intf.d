examples/cell_signal.mli:

examples/tcp_deployment.ml: Array Core List Printf Prio Sys Unix

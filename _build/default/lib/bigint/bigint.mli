(** Arbitrary-precision signed integers on 31-bit limbs.

    This module replaces the Zarith/FLINT functionality that the original Prio
    implementation used: it provides exactly the operations the rest of the
    system needs — ring arithmetic, division, modular exponentiation,
    Montgomery multiplication for a fixed odd modulus, Miller–Rabin primality,
    and fixed-width byte serialization.

    Values are immutable. Internally a number is a sign and a little-endian
    magnitude in base 2^31, chosen so that all intermediate products fit in
    OCaml's 63-bit native [int]. *)

type t

val zero : t
val one : t
val two : t

(** {1 Conversions} *)

val of_int : int -> t
val to_int : t -> int option
(** [to_int x] is [Some n] when [x] fits in a native [int]. *)

val to_int_exn : t -> int
val of_string : string -> t
(** Decimal, or hexadecimal with a ["0x"] prefix; leading ['-'] allowed. *)

val to_string : t -> string
(** Decimal representation. *)

val to_string_hex : t -> string
val pp : Format.formatter -> t -> unit

val to_bytes_be : t -> int -> Bytes.t
(** [to_bytes_be x width] is the big-endian, zero-padded [width]-byte
    encoding of non-negative [x].
    @raise Invalid_argument if [x] is negative or does not fit. *)

val of_bytes_be : Bytes.t -> t
(** Inverse of {!to_bytes_be}; the result is non-negative. *)

(** {1 Comparison} *)

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_zero : t -> bool
val min : t -> t -> t
val max : t -> t -> t

(** {1 Ring arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val mul_int : t -> int -> t
val succ : t -> t
val pred : t -> t

(** {1 Bit operations} *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t
(** Arithmetic shift towards zero on the magnitude (sign preserved). *)

val num_bits : t -> int
(** Bits in the magnitude; [num_bits zero = 0]. *)

val testbit : t -> int -> bool
val is_even : t -> bool
val is_odd : t -> bool

(** {1 Division} *)

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r] and [0 <= |r| < |b|];
    [r] has the sign of [a] (truncated division).
    @raise Division_by_zero if [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val erem : t -> t -> t
(** Euclidean remainder: always in [0, |b|). *)

val divmod_small : t -> int -> t * int
(** Division by a positive single-limb integer (< 2^31). *)

(** {1 Number theory} *)

val pow : t -> int -> t
(** [pow x n] for [n >= 0]. *)

val pow_mod : t -> t -> t -> t
(** [pow_mod b e m] is [b^e mod m] for [e >= 0], [m > 0]. *)

val gcd : t -> t -> t

val invert_mod : t -> t -> t option
(** [invert_mod a m] is [Some x] with [a*x = 1 (mod m)] when gcd(a,m)=1. *)

val is_probable_prime : ?rounds:int -> t -> bool
(** Miller–Rabin with fixed small-prime bases plus [rounds] (default 40)
    pseudo-random bases derived deterministically from the candidate. *)

(** {1 Randomness}

    Random generation is parameterized by a caller-supplied source of uniform
    31-bit limbs, so this library stays independent of the crypto library. *)

val random_bits : rand_limb:(unit -> int) -> int -> t
(** Uniform in [0, 2^bits). *)

val random_below : rand_limb:(unit -> int) -> t -> t
(** Uniform in [0, bound) by rejection sampling; [bound > 0]. *)

(** {1 Montgomery arithmetic}

    A context for a fixed odd modulus enabling division-free modular
    multiplication; this is what the prime fields use under the hood. *)

module Mont : sig
  type ctx

  val create : t -> ctx
  (** @raise Invalid_argument if the modulus is not an odd number >= 3. *)

  val modulus : ctx -> t

  type elt
  (** A residue kept in Montgomery form. *)

  val to_mont : ctx -> t -> elt
  (** Input is reduced mod m first (Euclidean). *)

  val of_mont : ctx -> elt -> t
  val zero : ctx -> elt
  val one : ctx -> elt
  val add : ctx -> elt -> elt -> elt
  val sub : ctx -> elt -> elt -> elt
  val neg : ctx -> elt -> elt
  val mul : ctx -> elt -> elt -> elt
  val sqr : ctx -> elt -> elt
  val pow : ctx -> elt -> t -> elt
  (** Exponent [>= 0] as a plain integer. *)

  val equal : elt -> elt -> bool
  val is_zero : ctx -> elt -> bool
end

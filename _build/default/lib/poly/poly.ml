(** Dense univariate polynomials over a prime field.

    Coefficient arrays are little-endian (index i holds the coefficient of
    x^i). This module provides the classic O(n²) algorithms — Horner
    evaluation, schoolbook multiplication, textbook Lagrange interpolation on
    arbitrary points — which serve as the paper-faithful reference path and
    as cross-checks for the NTT fast path in {!Ntt}. *)

module Make (F : Prio_field.Field_intf.S) = struct
  type t = F.t array

  let zero : t = [||]
  let of_coeffs (c : F.t array) : t = c

  let normalize (p : t) : t =
    let n = ref (Array.length p) in
    while !n > 0 && F.is_zero p.(!n - 1) do
      decr n
    done;
    if !n = Array.length p then p else Array.sub p 0 !n

  let degree p =
    let p = normalize p in
    Array.length p - 1
  (* degree of the zero polynomial is -1 *)

  let is_zero p = Array.for_all F.is_zero p

  let equal p q =
    let p = normalize p and q = normalize q in
    Array.length p = Array.length q && Array.for_all2 F.equal p q

  let constant c : t = if F.is_zero c then [||] else [| c |]

  (** Horner evaluation. *)
  let eval (p : t) (x : F.t) : F.t =
    let acc = ref F.zero in
    for i = Array.length p - 1 downto 0 do
      acc := F.add (F.mul !acc x) p.(i)
    done;
    !acc

  let add (p : t) (q : t) : t =
    let lp = Array.length p and lq = Array.length q in
    let n = Stdlib.max lp lq in
    Array.init n (fun i ->
        F.add (if i < lp then p.(i) else F.zero) (if i < lq then q.(i) else F.zero))

  let sub (p : t) (q : t) : t =
    let lp = Array.length p and lq = Array.length q in
    let n = Stdlib.max lp lq in
    Array.init n (fun i ->
        F.sub (if i < lp then p.(i) else F.zero) (if i < lq then q.(i) else F.zero))

  let scale (c : F.t) (p : t) : t = Array.map (F.mul c) p

  let mul_naive (p : t) (q : t) : t =
    let lp = Array.length p and lq = Array.length q in
    if lp = 0 || lq = 0 then [||]
    else begin
      let r = Array.make (lp + lq - 1) F.zero in
      for i = 0 to lp - 1 do
        if not (F.is_zero p.(i)) then
          for j = 0 to lq - 1 do
            r.(i + j) <- F.add r.(i + j) (F.mul p.(i) q.(j))
          done
      done;
      r
    end

  (** Textbook Lagrange interpolation through distinct points.
      O(n²) field multiplications. *)
  let interpolate (points : (F.t * F.t) array) : t =
    let n = Array.length points in
    if n = 0 then [||]
    else begin
      let result = ref [||] in
      for i = 0 to n - 1 do
        let xi, yi = points.(i) in
        (* numerator polynomial prod_{j<>i} (x - x_j), denominator scalar *)
        let num = ref [| F.one |] and denom = ref F.one in
        for j = 0 to n - 1 do
          if j <> i then begin
            let xj = fst points.(j) in
            num := mul_naive !num [| F.neg xj; F.one |];
            denom := F.mul !denom (F.sub xi xj)
          end
        done;
        result := add !result (scale (F.div yi !denom) !num)
      done;
      normalize !result
    end

  (** Batch inversion (Montgomery's trick): invert all elements with one
      field inversion and 3(n-1) multiplications. All inputs must be
      nonzero. *)
  let batch_invert (xs : F.t array) : F.t array =
    let n = Array.length xs in
    if n = 0 then [||]
    else begin
      let prefix = Array.make n F.one in
      prefix.(0) <- xs.(0);
      for i = 1 to n - 1 do
        prefix.(i) <- F.mul prefix.(i - 1) xs.(i)
      done;
      let inv_all = ref (F.inv prefix.(n - 1)) in
      let out = Array.make n F.one in
      for i = n - 1 downto 1 do
        out.(i) <- F.mul !inv_all prefix.(i - 1);
        inv_all := F.mul !inv_all xs.(i)
      done;
      out.(0) <- !inv_all;
      out
    end

  let pp fmt (p : t) =
    let p = normalize p in
    if Array.length p = 0 then Format.pp_print_string fmt "0"
    else
      Array.iteri
        (fun i c ->
          if i > 0 then Format.fprintf fmt " + ";
          Format.fprintf fmt "%a·x^%d" F.pp c i)
        p
end

(** Dense univariate polynomials over a prime field: the classic O(n²)
    reference algorithms (Horner, schoolbook product, textbook Lagrange
    interpolation) that back the paper-literal SNIP path and cross-check
    the NTT fast path. Coefficient arrays are little-endian. *)

module Make (F : Prio_field.Field_intf.S) : sig
  type t = F.t array
  (** Coefficients, index i holding the coefficient of x^i; trailing
      zeros are permitted. *)

  val zero : t
  val of_coeffs : F.t array -> t

  val normalize : t -> t
  (** Strip trailing zero coefficients. *)

  val degree : t -> int
  (** Degree after normalization; the zero polynomial has degree −1. *)

  val is_zero : t -> bool

  val equal : t -> t -> bool
  (** Equality modulo trailing zeros. *)

  val constant : F.t -> t

  val eval : t -> F.t -> F.t
  (** Horner evaluation. *)

  val add : t -> t -> t
  val sub : t -> t -> t
  val scale : F.t -> t -> t

  val mul_naive : t -> t -> t
  (** Schoolbook product, O(n²); see {!Ntt.Make.mul} for the fast path. *)

  val interpolate : (F.t * F.t) array -> t
  (** Lagrange interpolation through distinct points, O(n²). *)

  val batch_invert : F.t array -> F.t array
  (** Montgomery's trick: all inverses with one field inversion and
      3(n−1) multiplications. Inputs must be nonzero. *)

  val pp : Format.formatter -> t -> unit
end

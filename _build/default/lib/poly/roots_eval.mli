(** "Verification without interpolation" (paper, Appendix I): evaluate,
    at a batch-fixed secret point r, the degree-<N polynomial through
    shares placed on the root-of-unity grid — as a length-N inner product
    with precomputed Lagrange weights

      λ_j(r) = ω^j · (r^N − 1) / (N · (r − ω^j)),

    all N weights computed with a single field inversion. This turns each
    SNIP verification from Θ(N log N) into Θ(N) multiplications. *)

module Make (F : Prio_field.Field_intf.S) : sig
  type ctx

  val point : ctx -> F.t
  val size : ctx -> int

  val r_collides : n:int -> F.t -> bool
  (** Is r an n-th root of unity (i.e. on the evaluation grid)? The SNIP
      verifier re-samples r until this is false. *)

  val create : n:int -> r:F.t -> ctx
  (** Precompute the weights for grid size [n] (a power of two within the
      field's two-adicity) at off-grid point [r].
      @raise Invalid_argument on a grid collision or bad size. *)

  val eval : ctx -> F.t array -> F.t
  (** [eval ctx values] is P(r) for the unique degree-<n polynomial P
      with P(ω^j) = values.(j). *)
end

lib/poly/ntt.ml: Array Prio_field Stdlib

lib/poly/poly.ml: Array Format Prio_field Stdlib

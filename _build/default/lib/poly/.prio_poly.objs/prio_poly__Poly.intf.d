lib/poly/poly.mli: Format Prio_field

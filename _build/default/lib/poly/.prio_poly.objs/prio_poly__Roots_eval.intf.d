lib/poly/roots_eval.mli: Prio_field

lib/poly/roots_eval.ml: Array Poly Prio_field

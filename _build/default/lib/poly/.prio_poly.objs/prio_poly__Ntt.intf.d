lib/poly/ntt.mli: Prio_field

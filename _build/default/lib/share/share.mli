(** Secret sharing over a prime field.

    Prio uses s-out-of-s {e additive} sharing (§3): x splits into uniform
    shares summing to x, so any s−1 of them are information-theoretically
    independent of x, and sharing is linear — servers aggregate by adding
    shares locally. The compressed variant (Appendix I) replaces the
    first s−1 shares with 32-byte PRG seeds. {!Shamir} provides the
    threshold sharing of the Appendix B extension. *)

module Make (F : Prio_field.Field_intf.S) : sig
  val split : Prio_crypto.Rng.t -> s:int -> F.t -> F.t array
  (** s uniform shares summing to the secret. *)

  val reconstruct : F.t array -> F.t

  val split_vector : Prio_crypto.Rng.t -> s:int -> F.t array -> F.t array array
  (** Coordinate-wise sharing of a vector; result indexed [share].(coord). *)

  val reconstruct_vector : F.t array array -> F.t array

  val add_into : dst:F.t array -> F.t array -> unit
  (** Accumulate a share vector (the servers' Aggregate step). *)

  (** {1 PRG-compressed shares (Appendix I)} *)

  type compressed =
    | Seed of Bytes.t  (** 32-byte seed; expand with the PRG *)
    | Explicit of F.t array

  val expand_seed : Bytes.t -> len:int -> F.t array
  (** Deterministic seed → length-[len] share vector. *)

  val expand : compressed -> len:int -> F.t array

  val split_compressed : Prio_crypto.Rng.t -> s:int -> F.t array -> compressed array
  (** First s−1 shares are seeds, the last explicit: upload cost drops
      from s·L to L + O(s) elements. *)

  val compressed_size : compressed -> int
  (** Serialized bytes of one compressed share. *)

  (** {1 Shamir threshold sharing (Appendix B)} *)

  module Shamir : sig
    val split :
      Prio_crypto.Rng.t -> threshold:int -> shares:int -> F.t -> (F.t * F.t) array
    (** Evaluations of a random degree-(threshold−1) polynomial with the
        secret at 0, at points 1..shares. Any [threshold] shares
        reconstruct; fewer reveal nothing. *)

    val reconstruct : (F.t * F.t) array -> F.t
    (** Lagrange interpolation at zero (needs ≥ threshold points). *)
  end
end

lib/share/dpf.ml: Array Bytes Char Prio_crypto Prio_field

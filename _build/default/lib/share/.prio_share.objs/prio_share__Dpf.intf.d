lib/share/dpf.mli: Prio_crypto Prio_field

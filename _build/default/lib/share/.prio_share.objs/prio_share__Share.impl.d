lib/share/share.ml: Array Bytes Prio_crypto Prio_field Prio_poly

lib/share/share.mli: Bytes Prio_crypto Prio_field

(** Two-party distributed point functions — tree-based function secret
    sharing (Boyle–Gilboa–Ishai) over the ChaCha20 PRG.

    The Appendix G share-compression primitive: with two servers, a
    client's one-hot submission f(x) = β·[x = α] over [0, 2^bits) splits
    into two keys of O(bits) size whose evaluations sum to the one-hot
    vector, while either key alone reveals nothing about α or β.

    Robustness for compressed submissions is future work (as in the
    paper); see {!Prio_proto.Compressed} for the aggregation pipeline. *)

module Make (F : Prio_field.Field_intf.S) : sig
  type key
  (** One party's key: root seed, one correction word per level, and a
      final output correction. *)

  val key_bytes : key -> int
  (** Serialized key size — O(bits), vs O(2^bits) explicit shares. *)

  val gen : Prio_crypto.Rng.t -> bits:int -> alpha:int -> beta:F.t -> key * key
  (** Keys for the point function that is [beta] at [alpha] and zero
      elsewhere on [0, 2^bits).
      @raise Invalid_argument for bits outside 1..30 or alpha out of
      domain. *)

  val eval : key -> int -> F.t
  (** One party's share of f at one point. *)

  val eval_all : key -> F.t array
  (** The party's additive share of the entire length-2^bits vector
      (shares internal tree nodes; O(2^bits) PRG calls total). *)
end

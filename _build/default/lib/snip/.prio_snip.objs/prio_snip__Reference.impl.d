lib/snip/reference.ml: Array Fun List Prio_circuit Prio_crypto Prio_field Prio_poly Prio_share

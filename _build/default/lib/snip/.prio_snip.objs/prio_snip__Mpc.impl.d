lib/snip/mpc.ml: Array Prio_circuit Prio_crypto Prio_field Prio_share Snip

lib/snip/snip.ml: Array Option Printf Prio_circuit Prio_crypto Prio_field Prio_poly Prio_share

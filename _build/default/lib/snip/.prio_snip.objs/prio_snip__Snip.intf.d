lib/snip/snip.mli: Prio_circuit Prio_crypto Prio_field

lib/snip/mpc.mli: Prio_circuit Prio_crypto Prio_field

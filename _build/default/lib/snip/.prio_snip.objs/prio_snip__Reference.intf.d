lib/snip/reference.mli: Prio_circuit Prio_crypto Prio_field

(** Server-side Valid evaluation — the "Prio-MPC" variant (§4.4, App. E).

    When the Valid predicate is a server secret (e.g. a proprietary spam
    filter), the client cannot evaluate it and therefore cannot build a SNIP
    for it. Instead the client ships M Beaver multiplication triples — one
    per mul gate — plus a SNIP proving the triples well-formed, and the
    servers evaluate the circuit themselves with Beaver's protocol
    (Appendix C.2). Each mul gate costs every server one broadcast of two
    field elements, so server-to-server traffic grows as Θ(M) (Figure 6's
    Prio-MPC line), and privacy holds only against honest-but-curious
    servers. *)

module Make (F : Prio_field.Field_intf.S) = struct
  module C = Prio_circuit.Circuit.Make (F)
  module Sh = Prio_share.Share.Make (F)
  module Snip = Snip.Make (F)
  module Rng = Prio_crypto.Rng

  type triple_share = { a : F.t; b : F.t; c : F.t }

  (** Client: generate M well-formed triples, shared across s servers.
      Result is indexed [server].(gate). *)
  let gen_triples ~rng ~s ~m : triple_share array array =
    let per_server = Array.init s (fun _ -> Array.make m { a = F.zero; b = F.zero; c = F.zero }) in
    for t = 0 to m - 1 do
      let a = F.random rng and b = F.random rng in
      let c = F.mul a b in
      let a_sh = Sh.split rng ~s a and b_sh = Sh.split rng ~s b and c_sh = Sh.split rng ~s c in
      for i = 0 to s - 1 do
        per_server.(i).(t) <- { a = a_sh.(i); b = b_sh.(i); c = c_sh.(i) }
      done
    done;
    per_server

  (** The triple-validity circuit: inputs (a_1..a_M, b_1..b_M, c_1..c_M),
      asserting a_t·b_t − c_t = 0 for every t. The client proves it with an
      ordinary SNIP, which is how Prio-MPC keeps robustness against
      malicious clients. *)
  let triple_circuit ~m : C.t =
    let b = C.Builder.create ~num_inputs:(3 * m) in
    for t = 0 to m - 1 do
      let at = C.Builder.input b t
      and bt = C.Builder.input b (m + t)
      and ct = C.Builder.input b ((2 * m) + t) in
      let prod = C.Builder.mul b at bt in
      C.Builder.assert_zero b (C.Builder.sub b prod ct)
    done;
    C.Builder.build b

  (** Flatten triples into the triple-circuit's input vector. *)
  let triples_to_inputs (triples : triple_share array) : F.t array =
    let m = Array.length triples in
    Array.init (3 * m) (fun i ->
        let t = i mod m in
        if i < m then triples.(t).a
        else if i < 2 * m then triples.(t).b
        else triples.(t).c)

  type stats = {
    rounds : int;  (** communication rounds (circuit depth in mul gates) *)
    elements_broadcast_per_server : int;
        (** field elements each server broadcast during evaluation *)
  }

  (** Multi-party evaluation of [circuit] on secret-shared inputs.

      [inputs.(i)] is server i's share vector and [triples.(i)] its triple
      shares. Returns per-server wire-share arrays (summing to the true
      wire values) and communication statistics. The simulation executes
      the broadcasts by reconstructing d and e exactly as the network
      would. *)
  let eval (circuit : C.t) ~(inputs : F.t array array)
      ~(triples : triple_share array array) : F.t array array * stats =
    let s = Array.length inputs in
    if s < 2 then invalid_arg "Mpc.eval: need at least two servers";
    let m = C.num_mul_gates circuit in
    Array.iter
      (fun tr -> if Array.length tr <> m then invalid_arg "Mpc.eval: need one triple per mul gate")
      triples;
    let inv_s = F.inv (F.of_int s) in
    let nw = C.num_wires circuit in
    let wires = Array.init s (fun _ -> Array.make nw F.zero) in
    let mul_idx = ref 0 in
    let rounds = ref 0 in
    Array.iteri
      (fun w g ->
        match g with
        | C.Input k -> for i = 0 to s - 1 do wires.(i).(w) <- inputs.(i).(k) done
        | C.Const v -> for i = 0 to s - 1 do wires.(i).(w) <- F.mul v inv_s done
        | C.Add (x, y) ->
          for i = 0 to s - 1 do wires.(i).(w) <- F.add wires.(i).(x) wires.(i).(y) done
        | C.Sub (x, y) ->
          for i = 0 to s - 1 do wires.(i).(w) <- F.sub wires.(i).(x) wires.(i).(y) done
        | C.Scale (v, x) ->
          for i = 0 to s - 1 do wires.(i).(w) <- F.mul v wires.(i).(x) done
        | C.Add_const (v, x) ->
          for i = 0 to s - 1 do
            wires.(i).(w) <- F.add (F.mul v inv_s) wires.(i).(x)
          done
        | C.Mul (x, y) ->
          let t = !mul_idx in
          incr mul_idx;
          incr rounds;
          (* Beaver: broadcast d_i = [x]_i − [a]_i, e_i = [y]_i − [b]_i *)
          let d = ref F.zero and e = ref F.zero in
          for i = 0 to s - 1 do
            d := F.add !d (F.sub wires.(i).(x) triples.(i).(t).a);
            e := F.add !e (F.sub wires.(i).(y) triples.(i).(t).b)
          done;
          let d = !d and e = !e in
          for i = 0 to s - 1 do
            let tr = triples.(i).(t) in
            wires.(i).(w) <-
              F.add
                (F.add (F.mul (F.mul d e) inv_s) (F.mul d tr.b))
                (F.add (F.mul e tr.a) tr.c)
          done)
      circuit.C.gates;
    (wires, { rounds = !rounds; elements_broadcast_per_server = 2 * m })

  (** After evaluation, decide validity: servers publish shares of a random
      linear combination of the assert-zero wires (two more field elements
      of traffic counting the final sum publication). *)
  let decide ~rng (circuit : C.t) (wires : F.t array array) : bool =
    let zc =
      Array.init (Array.length circuit.C.assert_zero) (fun _ -> F.random rng)
    in
    let total = ref F.zero in
    Array.iter
      (fun w ->
        let zs = C.assert_zero_values circuit w in
        Array.iteri (fun j z -> total := F.add !total (F.mul zc.(j) z)) zs)
      wires;
    F.is_zero !total
end

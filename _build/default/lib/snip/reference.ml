(** Reference SNIP: the paper's §4.2 construction taken literally.

    Where {!Snip} places wire values on a root-of-unity grid and uses the
    NTT plus the fixed-point evaluation contexts of Appendix I, this module
    interpolates f and g through the integer points 0, 1, …, M with textbook
    O(M²) Lagrange interpolation, ships h as a coefficient vector, and has
    each verifier interpolate explicitly — exactly the protocol as first
    described, before the optimizations.

    It exists as an executable specification: the test suite cross-checks
    that the optimized {!Snip} and this reference accept and reject the
    same submissions, and the benchmark suite uses it to quantify what the
    Appendix I optimizations buy. Do not use it for large circuits. *)

module Make (F : Prio_field.Field_intf.S) = struct
  module C = Prio_circuit.Circuit.Make (F)
  module P = Prio_poly.Poly.Make (F)
  module Sh = Prio_share.Share.Make (F)
  module Rng = Prio_crypto.Rng

  type proof_share = {
    f0 : F.t;
    g0 : F.t;
    h_coeffs : F.t array;  (** shares of the coefficients of h, degree ≤ 2M *)
    a : F.t;
    b : F.t;
    c : F.t;
  }

  type submission_share = { x_share : F.t array; proof : proof_share }

  (** Client: evaluate Valid(x), interpolate f and g through
      (t, wire values) for t = 0..M with random slot 0, set h = f·g
      (schoolbook), and share everything. *)
  let prove ~rng ~(circuit : C.t) ~num_servers ~(inputs : F.t array) :
      submission_share array =
    let s = num_servers in
    let m = C.num_mul_gates circuit in
    let x_shares = Sh.split_vector rng ~s inputs in
    if m = 0 then
      Array.map
        (fun x_share ->
          { x_share;
            proof = { f0 = F.zero; g0 = F.zero; h_coeffs = [||]; a = F.zero; b = F.zero; c = F.zero } })
        x_shares
    else begin
      let _, pairs = C.eval_mul_pairs circuit ~inputs in
      let u0 = F.random rng and v0 = F.random rng in
      let pts side =
        Array.init (m + 1) (fun t ->
            let y =
              if t = 0 then (if side = `L then u0 else v0)
              else begin
                let u, v = pairs.(t - 1) in
                if side = `L then u else v
              end
            in
            (F.of_int t, y))
      in
      let f = P.interpolate (pts `L) in
      let g = P.interpolate (pts `R) in
      let h = P.mul_naive f g in
      let a = F.random rng and b = F.random rng in
      let c = F.mul a b in
      let f0_sh = Sh.split rng ~s u0 in
      let g0_sh = Sh.split rng ~s v0 in
      let h_sh = Sh.split_vector rng ~s h in
      let a_sh = Sh.split rng ~s a and b_sh = Sh.split rng ~s b and c_sh = Sh.split rng ~s c in
      Array.init s (fun i ->
          {
            x_share = x_shares.(i);
            proof =
              { f0 = f0_sh.(i); g0 = g0_sh.(i); h_coeffs = h_sh.(i);
                a = a_sh.(i); b = b_sh.(i); c = c_sh.(i) };
          })
    end

  (** Servers (simulated in one process): each server walks the circuit on
      its shares with mul outputs [h(t)]ᵢ, interpolates its [f]ᵢ and [g]ᵢ
      through points 0..M, evaluates everything at a fresh random r, and
      the cluster runs the Beaver-assisted polynomial identity test plus
      the assert-zero combination. *)
  let verify ~rng (circuit : C.t) (subs : submission_share array) : bool =
    let s = Array.length subs in
    let m = C.num_mul_gates circuit in
    let inv_s = F.inv (F.of_int s) in
    let zcoef =
      Array.init (Array.length circuit.C.assert_zero) (fun _ -> F.random rng)
    in
    (* avoid the interpolation points, as the paper's Appendix D requires *)
    let rec sample_r () =
      let r = F.random rng in
      let collides =
        List.exists (fun t -> F.equal r (F.of_int t)) (List.init (m + 1) Fun.id)
      in
      if collides then sample_r () else r
    in
    let r = if m = 0 then F.zero else sample_r () in
    let states =
      Array.map
        (fun sub ->
          let mul_outputs =
            Array.init m (fun t -> P.eval sub.proof.h_coeffs (F.of_int (t + 1)))
          in
          let wires, mul_pairs =
            C.eval_shares circuit ~const_share_of_one:inv_s ~inputs:sub.x_share
              ~mul_outputs
          in
          let zero =
            let acc = ref F.zero in
            Array.iteri
              (fun j z -> acc := F.add !acc (F.mul zcoef.(j) wires.(z)))
              circuit.C.assert_zero;
            !acc
          in
          if m = 0 then (F.zero, F.zero, F.zero, zero, sub.proof)
          else begin
            let pts side =
              Array.init (m + 1) (fun t ->
                  let y =
                    if t = 0 then (if side = `L then sub.proof.f0 else sub.proof.g0)
                    else begin
                      let u, v = mul_pairs.(t - 1) in
                      if side = `L then u else v
                    end
                  in
                  (F.of_int t, y))
            in
            let fr = P.eval (P.interpolate (pts `L)) r in
            let gr = P.eval (P.interpolate (pts `R)) r in
            let hr = P.eval sub.proof.h_coeffs r in
            (fr, gr, hr, zero, sub.proof)
          end)
        subs
    in
    if m = 0 then begin
      let zero =
        Array.fold_left (fun acc (_, _, _, z, _) -> F.add acc z) F.zero states
      in
      F.is_zero zero
    end
    else begin
      (* Beaver openings *)
      let d =
        Array.fold_left (fun acc (fr, _, _, _, p) -> F.add acc (F.sub fr p.a)) F.zero states
      in
      let e =
        Array.fold_left
          (fun acc (_, gr, _, _, p) -> F.add acc (F.sub (F.mul r gr) p.b))
          F.zero states
      in
      let sigma =
        Array.fold_left
          (fun acc (_, _, hr, _, p) ->
            F.add acc
              (F.sub
                 (F.add
                    (F.add (F.mul (F.mul d e) inv_s) (F.mul d p.b))
                    (F.add (F.mul e p.a) p.c))
                 (F.mul r hr)))
          F.zero states
      in
      let zero =
        Array.fold_left (fun acc (_, _, _, z, _) -> F.add acc z) F.zero states
      in
      F.is_zero sigma && F.is_zero zero
    end
end

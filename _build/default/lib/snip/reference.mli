(** The paper-literal SNIP of §4.2 as an executable specification:
    Lagrange interpolation of f and g through the integer points 0..M
    (O(M²)), h shipped as coefficients, verifiers interpolating
    explicitly — the protocol before the Appendix I optimizations.

    The test suite cross-checks that this construction and the optimized
    {!Snip} accept and reject identically; the `ablation` benchmark
    measures the orders-of-magnitude gap. Do not use for large
    circuits. *)

module Make (F : Prio_field.Field_intf.S) : sig
  module C : module type of Prio_circuit.Circuit.Make (F)

  type proof_share = {
    f0 : F.t;
    g0 : F.t;
    h_coeffs : F.t array;  (** shares of h's coefficients, degree ≤ 2M *)
    a : F.t;
    b : F.t;
    c : F.t;
  }

  type submission_share = { x_share : F.t array; proof : proof_share }

  val prove :
    rng:Prio_crypto.Rng.t -> circuit:C.t -> num_servers:int ->
    inputs:F.t array -> submission_share array

  val verify : rng:Prio_crypto.Rng.t -> C.t -> submission_share array -> bool
  (** The full check, all servers simulated in one process, with a fresh
      identity-test point per call. *)
end

(** Server-side Valid evaluation — the "Prio-MPC" variant (paper §4.4,
    Appendix E).

    When Valid is a server secret the client cannot SNIP it; instead it
    ships one Beaver triple per mul gate plus a SNIP proving the triples
    well-formed, and the servers evaluate the circuit themselves with
    Beaver's protocol: one broadcast of two field elements per server per
    gate (the Θ(M) traffic of Figure 6), privacy against
    honest-but-curious servers. *)

module Make (F : Prio_field.Field_intf.S) : sig
  module C : module type of Prio_circuit.Circuit.Make (F)

  type triple_share = { a : F.t; b : F.t; c : F.t }
  (** One server's share of one multiplication triple. *)

  val gen_triples :
    rng:Prio_crypto.Rng.t -> s:int -> m:int -> triple_share array array
  (** Client side: [m] well-formed triples shared across [s] servers;
      result indexed [server].(gate). *)

  val triple_circuit : m:int -> C.t
  (** The public circuit asserting a_t·b_t = c_t for all t over inputs
      (a_1..a_m, b_1..b_m, c_1..c_m) — what the client's SNIP proves. *)

  val triples_to_inputs : triple_share array -> F.t array
  (** Flatten one party's triples into the triple circuit's input order. *)

  type stats = {
    rounds : int;  (** Beaver rounds = mul gates evaluated *)
    elements_broadcast_per_server : int;
  }

  val eval :
    C.t -> inputs:F.t array array -> triples:triple_share array array ->
    F.t array array * stats
  (** Multi-party evaluation on shares (simulated in-process): per-server
      wire-share arrays summing to the true wire values, plus traffic
      stats. *)

  val decide : rng:Prio_crypto.Rng.t -> C.t -> F.t array array -> bool
  (** Publish a random combination of the assert-zero wire shares and
      test it for zero. *)
end

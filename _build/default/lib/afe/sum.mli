(** Integer sum and arithmetic mean (paper §5.2).

    Encode(x) = (x, β₀ … β_{b−1}) with β the binary digits; Valid checks
    each β is a bit (b mul gates) and x = Σ 2^i·β_i (affine); only the
    first component is aggregated, so the servers publish exactly Σx_i.
    Field sizing: |F| > n·2^b. *)

module Make (F : Prio_field.Field_intf.S) : sig
  module A : module type of Afe.Make (F)

  val circuit : bits:int -> A.C.t
  val encode : bits:int -> int -> F.t array

  val sum : bits:int -> (int, Prio_bigint.Bigint.t) A.t
  (** Exact sum of b-bit non-negative integers. *)

  val mean : bits:int -> (int, float) A.t

  val count_bits : (bool, int) A.t
  (** The §3 motivating example: count the true bits. *)
end

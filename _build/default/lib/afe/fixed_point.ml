(** Fixed-point embedding of reals (paper §5.3: "When x and y are real
    numbers, we can embed the reals into a finite field F using a
    fixed-point representation, as long as we size the field large enough
    to avoid overflow").

    A real v in [0, 2^int_bits) is represented by the integer
    round(v · 2^frac_bits), which the integer AFEs (sum, variance,
    regression) consume directly; decodes divide back out. Helpers size
    the field check: n clients of b-bit fixed-point values need
    |F| > n · 2^(2b) for the quadratic AFEs. *)

module Make (F : Prio_field.Field_intf.S) = struct
  module A = Afe.Make (F)
  module S = Sum.Make (F)
  module B = Prio_bigint.Bigint

  type repr = { int_bits : int; frac_bits : int }

  let total_bits r = r.int_bits + r.frac_bits
  let scale r = float_of_int (1 lsl r.frac_bits)

  (** Largest representable value (inclusive). *)
  let max_value r = ((2. ** float_of_int r.int_bits) *. scale r -. 1.) /. scale r

  let to_int r v =
    if Float.is_nan v || v < 0. || v > max_value r then
      invalid_arg "Fixed_point.to_int: out of range";
    int_of_float (Float.round (v *. scale r))

  let of_int r i = float_of_int i /. scale r

  (** Quantization error bound for one value. *)
  let quantum r = 1. /. (2. *. scale r)

  (** Can an n-client aggregate of squared values stay below the field
      order? (The variance/regression AFEs sum x².) *)
  let field_fits r ~clients =
    let max_sq = B.shift_left B.one (2 * total_bits r) in
    B.compare (B.mul_int max_sq clients) F.order < 0

  (** Sum of fixed-point reals. *)
  let sum r : (float, float) A.t =
    let s = S.sum ~bits:(total_bits r) in
    {
      s with
      A.name = Printf.sprintf "fxsum-%d.%d" r.int_bits r.frac_bits;
      encode = (fun ~rng:_ v -> S.encode ~bits:(total_bits r) (to_int r v));
      decode = (fun ~n:_ sigma -> A.to_float sigma.(0) /. scale r);
      leakage = "the sum itself";
    }

  (** Mean of fixed-point reals. *)
  let mean r : (float, float) A.t =
    let s = sum r in
    {
      s with
      A.name = Printf.sprintf "fxmean-%d.%d" r.int_bits r.frac_bits;
      decode =
        (fun ~n sigma ->
          if n = 0 then nan else A.to_float sigma.(0) /. scale r /. float_of_int n);
    }
end

(** Product and geometric mean (paper §5.2): values are encoded by their
    base-2 logarithms in fixed point and summed with the integer-sum AFE;
    decoding exponentiates (and divides by n for the geometric mean).
    Approximate to the fixed-point quantum, as the paper's "b-bit
    logarithms" are. *)

module Make (F : Prio_field.Field_intf.S) : sig
  module A : module type of Afe.Make (F)

  val log_fixed : frac_bits:int -> float -> int
  (** round(log₂ x · 2^frac_bits); requires a positive, representable x. *)

  val product : bits:int -> frac_bits:int -> (float, float) A.t
  val geometric_mean : bits:int -> frac_bits:int -> (float, float) A.t
end

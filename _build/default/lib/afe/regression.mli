(** Private least-squares regression (paper §5.3) and R² evaluation of a
    public model (Appendix G).

    Each client's training example (x⃗, y) of b-bit integers is encoded
    with every monomial the normal equations need (features, pairwise
    products, target, cross terms, bit decompositions); Valid costs
    (d+1)·b + d(d+1)/2 + d mul gates. Decode solves the normal equations
    by Gaussian elimination. Leakage: the full moment matrix — the fit
    plus feature means and covariances, the fˆ of §5.3. Field sizing:
    |F| > n·2^{2b}. *)

module Make (F : Prio_field.Field_intf.S) : sig
  module A : module type of Afe.Make (F)

  type example = { features : int array; target : int }

  (** {1 Encoding layout helpers (exposed for tests)} *)

  val num_pairs : int -> int
  val idx_feature : int -> int -> int
  val idx_pair : int -> int -> int -> int
  val idx_y : int -> int
  val idx_xy : int -> int -> int
  val moments_len : int -> int
  val encoding_len : int -> bits:int -> int

  val circuit : d:int -> bits:int -> A.C.t
  val encode : d:int -> bits:int -> example -> F.t array

  val least_squares : d:int -> bits:int -> (example, float array) A.t
  (** Decodes to the coefficients (c₀, c₁ … c_d) of the fit
      h(x⃗) = c₀ + Σ c_j·x_j. *)

  (** {1 R² of a public model (Appendix G)} *)

  type model = { intercept : int; coefs : int array; frac_bits : int }
  (** ŷ = (intercept + Σ coefs_j·x_j) / 2^frac_bits, coefficients in
      fixed point. *)

  val predict : model -> int array -> float

  val r_squared : model:model -> bits:int -> (example, float) A.t
  (** Two mul gates beyond the range checks, as in the paper. Leakage:
      R² plus the target mean and variance. *)
end

(** Small dense linear algebra over floats: Gaussian elimination with
    partial pivoting for the regression AFE's (d+1)×(d+1) normal
    equations (paper §5.3, eq. 1). *)

exception Singular

val solve : float array array -> float array -> float array
(** [solve a b] solves A·x = b; inputs are unmodified.
    @raise Singular when the pivot falls below 1e-12. *)

val mat_vec : float array array -> float array -> float array

(** Boolean OR/AND and set union/intersection (paper §5.2), adapted from
    the paper's F_2^λ xor trick to the prime field the shares live in:
    false ↦ the zero vector, true ↦ [lambda_elems] uniform field
    elements. The client sum is zero iff every input was false, except
    with probability |F|^{-λ} (2^{-87} already at one element over F87).
    Every vector is a valid encoding, so the circuits are
    constraint-free, exactly as in the paper; AND and intersection are OR
    under De Morgan. *)

module Make (F : Prio_field.Field_intf.S) : sig
  module A : module type of Afe.Make (F)

  val bool_or : ?lambda_elems:int -> unit -> (bool, bool) A.t
  val bool_and : ?lambda_elems:int -> unit -> (bool, bool) A.t

  val set_union :
    universe:int -> ?lambda_elems:int -> unit -> (bool array, bool array) A.t
  (** Element-wise OR of characteristic vectors. *)

  val set_intersection :
    universe:int -> ?lambda_elems:int -> unit -> (bool array, bool array) A.t
end

(** Approximate counts over large domains via a count-min sketch (paper,
    Appendix G; Cormode–Muthukrishnan). Each client inserts its key into
    a depth × width sketch of one-hot rows; Valid's per-row one-hot
    checks cap any cheater's influence at one count per row. With width
    e/ε and depth ln(1/δ), queries overestimate by at most εn except with
    probability δ. Leakage: the aggregate sketch. *)

module Make (F : Prio_field.Field_intf.S) : sig
  module A : module type of Afe.Make (F)

  type params = { depth : int; width : int }

  val params_of_eps_delta : eps:float -> delta:float -> params

  val hash : params:params -> row:int -> string -> int
  (** Per-row SHA-256-based hash into [0, width). *)

  val circuit : params:params -> A.C.t
  val encode : params:params -> string -> F.t array

  type sketch = { params : params; table : int array array }

  val query : sketch -> string -> int
  (** Row-wise minimum: the count estimate for a key. *)

  val count_min : params:params -> (string, sketch) A.t
end

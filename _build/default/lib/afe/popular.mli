(** Most-popular string (paper, Appendix G).

    Majority variant: clients encode their b-bit string bit-wise; the
    aggregate's per-position counts round to the string held by > n/2
    clients. Bucketed variant (after Bassily–Smith): clients hash into
    buckets so strings with popularity ≥ c·n for c ≤ 1/2 become
    per-bucket majorities. *)

module Make (F : Prio_field.Field_intf.S) : sig
  module A : module type of Afe.Make (F)

  val most_popular : bits:int -> (bool array, bool array) A.t
  (** Correct when some string has > n/2 support. Leakage: per-position
      bit counts. *)

  val string_of_bits : bool array -> string
  val bits_of_string : string -> bool array

  val popular_buckets :
    bits:int -> buckets:int -> (bool array, (int * string) list) A.t
  (** Decodes to (population, majority-candidate) per non-empty bucket.
      Valid enforces one bucket vote per client (one-hot + bit checks). *)
end

(** Fixed-point embedding of reals (paper §5.3): v ↦ round(v·2^frac_bits)
    feeds the integer AFEs; decoders divide back out. Helpers size the
    field so quadratic aggregates cannot wrap. *)

module Make (F : Prio_field.Field_intf.S) : sig
  module A : module type of Afe.Make (F)

  type repr = { int_bits : int; frac_bits : int }

  val total_bits : repr -> int
  val scale : repr -> float
  val max_value : repr -> float
  val quantum : repr -> float
  (** Worst-case representation error of one value. *)

  val to_int : repr -> float -> int
  (** @raise Invalid_argument outside [0, max_value]. *)

  val of_int : repr -> int -> float

  val field_fits : repr -> clients:int -> bool
  (** Can n clients' squared values be summed without wrapping mod p? *)

  val sum : repr -> (float, float) A.t
  val mean : repr -> (float, float) A.t
end

(** MIN and MAX (paper §5.2): staircase-unary encodings ("x ≥ i" per
    position) combined with the randomized OR/AND of {!Boolean} — the
    highest set position of the OR is the maximum, of the AND the
    minimum. [approx_max] covers large ranges with logₐ B geometric bins
    for a multiplicative c-approximation, as in the paper. *)

module Make (F : Prio_field.Field_intf.S) : sig
  module A : module type of Afe.Make (F)

  val max_small : range:int -> ?lambda_elems:int -> unit -> (int, int) A.t
  (** Exact maximum over {0..range−1}; decodes −1 on an empty epoch. *)

  val min_small : range:int -> ?lambda_elems:int -> unit -> (int, int) A.t

  val approx_max :
    c:int -> range:int -> ?lambda_elems:int -> unit -> (int, int) A.t
  (** Returns the lower edge of the highest occupied geometric bin; the
      true maximum lies within a multiplicative factor of [c] above it. *)
end

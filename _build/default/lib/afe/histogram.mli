(** Frequency counts over a small domain (paper §5.2): one-hot encodings,
    Valid = one-hot check (B mul gates + affine sum), aggregate = the
    full histogram. Quantiles and other distribution statistics derive
    from it. Needs |F| > n. *)

module Make (F : Prio_field.Field_intf.S) : sig
  module A : module type of Afe.Make (F)

  val circuit : buckets:int -> A.C.t
  val encode : buckets:int -> int -> F.t array

  val histogram : buckets:int -> (int, int array) A.t

  val quantile_of_counts : int array -> float -> int
  (** q-th quantile (0 ≤ q ≤ 1) of the decoded histogram; −1 if empty. *)
end

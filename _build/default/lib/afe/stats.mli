(** Variance and standard deviation (paper §5.2): encode (x, x², bits of
    x); Valid checks the decomposition (b mul gates) and the square (one
    more); the aggregate (Σx, Σx²) decodes via Var X = E[X²] − (E[X])².
    Leakage: the mean as well as the variance (fˆ-private). Field sizing:
    |F| > n·2^{2b}. *)

module Make (F : Prio_field.Field_intf.S) : sig
  module A : module type of Afe.Make (F)

  type moments = { mean : float; variance : float; stddev : float }

  val circuit : bits:int -> A.C.t
  val encode : bits:int -> int -> F.t array

  val variance : bits:int -> (int, moments) A.t
end

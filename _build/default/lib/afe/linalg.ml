(** Small dense linear algebra over floats.

    The regression AFE's Decode step solves the least-squares normal
    equations (paper, eq. 1 and §5.3) on public sums; the matrix is tiny
    ((d+1)×(d+1)), so Gaussian elimination with partial pivoting is
    plenty. *)

exception Singular

(** Solve A·x = b by Gaussian elimination with partial pivoting.
    [a] is square, row-major; both inputs are left unmodified.
    @raise Singular if the matrix is (numerically) singular. *)
let solve (a : float array array) (b : float array) : float array =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let m = Array.map Array.copy a in
    let v = Array.copy b in
    for col = 0 to n - 1 do
      (* partial pivot *)
      let pivot = ref col in
      for row = col + 1 to n - 1 do
        if abs_float m.(row).(col) > abs_float m.(!pivot).(col) then pivot := row
      done;
      if abs_float m.(!pivot).(col) < 1e-12 then raise Singular;
      if !pivot <> col then begin
        let t = m.(col) in
        m.(col) <- m.(!pivot);
        m.(!pivot) <- t;
        let t = v.(col) in
        v.(col) <- v.(!pivot);
        v.(!pivot) <- t
      end;
      for row = col + 1 to n - 1 do
        let factor = m.(row).(col) /. m.(col).(col) in
        if factor <> 0. then begin
          for k = col to n - 1 do
            m.(row).(k) <- m.(row).(k) -. (factor *. m.(col).(k))
          done;
          v.(row) <- v.(row) -. (factor *. v.(col))
        end
      done
    done;
    let x = Array.make n 0. in
    for row = n - 1 downto 0 do
      let acc = ref v.(row) in
      for k = row + 1 to n - 1 do
        acc := !acc -. (m.(row).(k) *. x.(k))
      done;
      x.(row) <- !acc /. m.(row).(row)
    done;
    x
  end

(** Matrix-vector product. *)
let mat_vec (a : float array array) (x : float array) : float array =
  Array.map
    (fun row ->
      let acc = ref 0. in
      Array.iteri (fun j v -> acc := !acc +. (v *. x.(j))) row;
      !acc)
    a

lib/afe/regression.mli: Afe Prio_field

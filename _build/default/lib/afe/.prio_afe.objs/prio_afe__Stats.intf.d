lib/afe/stats.mli: Afe Prio_field

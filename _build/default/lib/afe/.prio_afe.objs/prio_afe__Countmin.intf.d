lib/afe/countmin.mli: Afe Prio_field

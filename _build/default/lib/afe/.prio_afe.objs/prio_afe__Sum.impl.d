lib/afe/sum.ml: Afe Array List Printf Prio_bigint Prio_field

lib/afe/linalg.mli:

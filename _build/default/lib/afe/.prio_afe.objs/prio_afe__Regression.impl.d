lib/afe/regression.ml: Afe Array Linalg List Printf Prio_field Stdlib

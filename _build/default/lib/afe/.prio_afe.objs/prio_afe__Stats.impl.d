lib/afe/stats.ml: Afe Array List Printf Prio_field Stdlib

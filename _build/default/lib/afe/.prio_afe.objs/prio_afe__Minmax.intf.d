lib/afe/minmax.mli: Afe Prio_field

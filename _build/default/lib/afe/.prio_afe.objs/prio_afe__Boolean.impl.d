lib/afe/boolean.ml: Afe Array Printf Prio_crypto Prio_field

lib/afe/popular.ml: Afe Array Bytes Char Fun List Printf Prio_crypto Prio_field String

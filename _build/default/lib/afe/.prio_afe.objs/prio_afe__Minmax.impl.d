lib/afe/minmax.ml: Afe Array Boolean Printf Prio_field

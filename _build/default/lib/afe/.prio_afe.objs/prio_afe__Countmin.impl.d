lib/afe/countmin.ml: Afe Array Bytes Char List Printf Prio_crypto Prio_field Stdlib

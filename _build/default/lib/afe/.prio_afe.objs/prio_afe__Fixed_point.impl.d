lib/afe/fixed_point.ml: Afe Array Float Printf Prio_bigint Prio_field Sum

lib/afe/popular.mli: Afe Prio_field

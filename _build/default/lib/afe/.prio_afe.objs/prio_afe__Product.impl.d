lib/afe/product.ml: Afe Array Float Printf Prio_field Sum

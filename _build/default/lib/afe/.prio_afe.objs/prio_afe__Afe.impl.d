lib/afe/afe.ml: Array List Prio_bigint Prio_circuit Prio_crypto Prio_field

lib/afe/linalg.ml: Array

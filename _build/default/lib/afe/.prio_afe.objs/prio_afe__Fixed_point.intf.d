lib/afe/fixed_point.mli: Afe Prio_field

lib/afe/afe.mli: Prio_bigint Prio_circuit Prio_crypto Prio_field

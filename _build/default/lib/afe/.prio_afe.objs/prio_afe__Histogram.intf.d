lib/afe/histogram.mli: Afe Prio_field

lib/afe/boolean.mli: Afe Prio_field

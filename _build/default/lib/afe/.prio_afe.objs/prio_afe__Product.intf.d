lib/afe/product.mli: Afe Prio_field

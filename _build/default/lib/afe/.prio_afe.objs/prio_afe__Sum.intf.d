lib/afe/sum.mli: Afe Prio_bigint Prio_field

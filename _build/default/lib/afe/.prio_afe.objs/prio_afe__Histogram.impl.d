lib/afe/histogram.ml: Afe Array List Printf Prio_field Stdlib

lib/core/prio.ml: List Prio_afe Prio_bigint Prio_circuit Prio_crypto Prio_field Prio_nizk Prio_poly Prio_proto Prio_share Prio_snip

(** SHA-256 (FIPS 180-4).

    Used for Fiat–Shamir challenges in the NIZK baseline, for the count-min
    sketch hash family, and inside HMAC for packet authentication. FIPS test
    vectors are checked in the test suite. *)

type ctx

val init : unit -> ctx
val update : ctx -> Bytes.t -> unit
val update_string : ctx -> string -> unit
val finalize : ctx -> Bytes.t
(** 32-byte digest; the context must not be reused afterwards. *)

val digest : Bytes.t -> Bytes.t
val digest_string : string -> Bytes.t
val hex : Bytes.t -> string

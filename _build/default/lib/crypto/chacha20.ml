(* ChaCha20 per RFC 8439.  All 32-bit words live in native ints and are
   masked back to 32 bits after every arithmetic step. *)

let m32 = 0xFFFFFFFF

let rotl x n = ((x lsl n) lor (x lsr (32 - n))) land m32

let get32 b off =
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

let put32 b off v =
  Bytes.set b off (Char.chr (v land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 3) (Char.chr ((v lsr 24) land 0xff))

let quarter_round st a b c d =
  st.(a) <- (st.(a) + st.(b)) land m32;
  st.(d) <- rotl (st.(d) lxor st.(a)) 16;
  st.(c) <- (st.(c) + st.(d)) land m32;
  st.(b) <- rotl (st.(b) lxor st.(c)) 12;
  st.(a) <- (st.(a) + st.(b)) land m32;
  st.(d) <- rotl (st.(d) lxor st.(a)) 8;
  st.(c) <- (st.(c) + st.(d)) land m32;
  st.(b) <- rotl (st.(b) lxor st.(c)) 7

let block ~key ~counter ~nonce =
  if Bytes.length key <> 32 then invalid_arg "Chacha20.block: key must be 32 bytes";
  if Bytes.length nonce <> 12 then invalid_arg "Chacha20.block: nonce must be 12 bytes";
  let init = Array.make 16 0 in
  init.(0) <- 0x61707865;
  init.(1) <- 0x3320646e;
  init.(2) <- 0x79622d32;
  init.(3) <- 0x6b206574;
  for i = 0 to 7 do
    init.(4 + i) <- get32 key (4 * i)
  done;
  init.(12) <- counter land m32;
  for i = 0 to 2 do
    init.(13 + i) <- get32 nonce (4 * i)
  done;
  let st = Array.copy init in
  for _ = 1 to 10 do
    quarter_round st 0 4 8 12;
    quarter_round st 1 5 9 13;
    quarter_round st 2 6 10 14;
    quarter_round st 3 7 11 15;
    quarter_round st 0 5 10 15;
    quarter_round st 1 6 11 12;
    quarter_round st 2 7 8 13;
    quarter_round st 3 4 9 14
  done;
  let out = Bytes.create 64 in
  for i = 0 to 15 do
    put32 out (4 * i) ((st.(i) + init.(i)) land m32)
  done;
  out

let encrypt ~key ?(counter = 1) ~nonce msg =
  let len = Bytes.length msg in
  let out = Bytes.create len in
  let nblocks = (len + 63) / 64 in
  for b = 0 to nblocks - 1 do
    let ks = block ~key ~counter:(counter + b) ~nonce in
    let off = b * 64 in
    let chunk = Stdlib.min 64 (len - off) in
    for i = 0 to chunk - 1 do
      Bytes.set out (off + i)
        (Char.chr (Char.code (Bytes.get msg (off + i)) lxor Char.code (Bytes.get ks i)))
    done
  done;
  out

(** ChaCha20 stream cipher (RFC 8439 core function).

    Used in two roles, mirroring the paper's use of AES-CTR:
    - as the pseudo-random generator for share compression (Appendix I), and
    - as the cipher inside the NaCl-box-style sealed client packets.

    Test vectors from RFC 8439 §2.3.2 and §2.4.2 are checked in the test
    suite. *)

val block : key:Bytes.t -> counter:int -> nonce:Bytes.t -> Bytes.t
(** One 64-byte keystream block. [key] is 32 bytes, [nonce] 12 bytes,
    [counter] a 32-bit block counter.
    @raise Invalid_argument on wrong key/nonce sizes. *)

val encrypt : key:Bytes.t -> ?counter:int -> nonce:Bytes.t -> Bytes.t -> Bytes.t
(** XOR the keystream into the message (encryption = decryption). The
    initial block counter defaults to 1, as in RFC 8439 AEAD usage. *)

(** Authenticated encryption for client→server packets.

    Stands in for NaCl's crypto_box in the original implementation: the paper
    encrypts and authenticates each Prio packet at the application layer so
    that no client→server TLS is needed. We use ChaCha20 + truncated
    HMAC-SHA256 under a pairwise symmetric key (the PKI / key agreement the
    paper assumes is out of scope, as it is there). *)

type key = Bytes.t

val derive_key : client_id:int -> server_id:int -> master:Bytes.t -> key
(** Deterministic pairwise key, standing in for a Diffie–Hellman shared
    secret under the deployment's PKI. *)

val overhead : int
(** Bytes added to a plaintext by sealing (nonce + tag). *)

val seal : key:key -> rng:Rng.t -> Bytes.t -> Bytes.t
(** [seal ~key ~rng plaintext] is nonce ‖ ciphertext ‖ tag. *)

val open_ : key:key -> Bytes.t -> Bytes.t option
(** [open_ ~key packet] authenticates and decrypts; [None] on forgery. *)

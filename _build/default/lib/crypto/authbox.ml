type key = Bytes.t

let nonce_len = 12
let tag_len = 16
let overhead = nonce_len + tag_len

let derive_key ~client_id ~server_id ~master =
  Sha256.digest_string
    (Printf.sprintf "prio-box|%d|%d|%s" client_id server_id (Bytes.to_string master))

let seal ~key ~rng plaintext =
  let nonce = Rng.bytes rng nonce_len in
  let ct = Chacha20.encrypt ~key ~nonce plaintext in
  let body = Bytes.cat nonce ct in
  let tag = Hmac.sha256_trunc ~key tag_len body in
  Bytes.cat body tag

let open_ ~key packet =
  let len = Bytes.length packet in
  if len < overhead then None
  else begin
    let body = Bytes.sub packet 0 (len - tag_len) in
    let tag = Bytes.sub packet (len - tag_len) tag_len in
    if not (Hmac.verify ~key ~tag body) then None
    else begin
      let nonce = Bytes.sub body 0 nonce_len in
      let ct = Bytes.sub body nonce_len (Bytes.length body - nonce_len) in
      Some (Chacha20.encrypt ~key ~nonce ct)
    end
  end

lib/crypto/authbox.mli: Bytes Rng

lib/crypto/rng.mli: Bytes

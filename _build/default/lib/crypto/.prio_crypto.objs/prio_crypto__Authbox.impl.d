lib/crypto/authbox.ml: Bytes Chacha20 Hmac Printf Rng Sha256

lib/crypto/rng.ml: Bytes Chacha20 Char Random Sha256

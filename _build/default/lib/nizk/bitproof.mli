(** Fiat–Shamir OR-proofs that a Pedersen commitment opens to 0 or 1 —
    the per-coordinate work unit of the paper's NIZK comparison scheme
    (§6), built from the disjunctive Schnorr (Chaum–Pedersen) protocol.

    Cost shape (Table 2): Θ(1) exponentiations per bit for both prover
    and verifier, hence Θ(M) per submission — the public-key bottleneck
    that SNIPs eliminate. *)

module B := Prio_bigint.Bigint

type t = {
  a0 : Group.elt;
  a1 : Group.elt;
  c0 : B.t;
  c1 : B.t;
  z0 : B.t;
  z1 : B.t;
}

val proof_bytes : int
(** Serialized size of one bit-proof. *)

val prove :
  Prio_crypto.Rng.t -> bit:int -> commitment:Pedersen.commitment ->
  randomness:B.t -> t
(** @raise Invalid_argument unless [bit] is 0 or 1. *)

val verify : Pedersen.commitment -> t -> bool

(** {1 Vector-level submissions} *)

type submission = {
  commitments : Pedersen.commitment array;
  proofs : t array;
  openings : Pedersen.opening array;
}

val client_encode : Prio_crypto.Rng.t -> int array -> submission
(** Commit to every bit and prove each 0/1 — the baseline's client side. *)

val server_verify : submission -> bool
(** Check every proof (the baseline's server side). *)

(** Pedersen commitments C = g^x·h^r over {!Group}: perfectly hiding,
    computationally binding, and additively homomorphic — the commitment
    scheme of the paper's NIZK comparison baseline (§6). *)

module B := Prio_bigint.Bigint

type commitment = Group.elt

type opening = { value : B.t; randomness : B.t }

val commit : value:B.t -> randomness:B.t -> commitment

val commit_fresh : Prio_crypto.Rng.t -> value:B.t -> commitment * opening
(** Commit under fresh uniform randomness. *)

val verify : commitment -> opening -> bool

val combine : commitment -> commitment -> commitment
(** Homomorphic addition: [combine (commit x r) (commit y s)] opens to
    (x + y, r + s) — how the baseline's servers aggregate. *)

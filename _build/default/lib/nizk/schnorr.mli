(** Schnorr signatures over {!Group} (Fiat–Shamir of the Schnorr
    identification protocol).

    The substrate for the paper's §7 Sybil / selective-DoS defense:
    registered clients sign their submissions so the servers can gate
    publication on a threshold of distinct registered contributors
    ({!Prio_proto.Registry}). *)

module B := Prio_bigint.Bigint

type secret_key = B.t
type public_key = Group.elt

type signature = { challenge : B.t; response : B.t }

val signature_bytes : int

val keygen : Prio_crypto.Rng.t -> secret_key * public_key

val sign : Prio_crypto.Rng.t -> secret_key -> Bytes.t -> signature

val verify : public_key -> Bytes.t -> signature -> bool

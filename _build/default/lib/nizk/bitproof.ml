(** Non-interactive zero-knowledge proof that a Pedersen commitment opens
    to 0 or 1 — the per-coordinate work unit of the paper's NIZK baseline.

    This is the classic disjunctive Schnorr (Chaum–Pedersen OR) proof made
    non-interactive with Fiat–Shamir: the statement "C = h^r or C/g = h^r"
    is proven with a simulated transcript for the false branch and a real
    one for the true branch.

    Costs: the prover performs ~4 exponentiations per bit on top of the 2
    for the commitment itself (the paper counts 2M exponentiations for an
    M-bit submission — same Θ(M) shape); the verifier performs ~4. This
    Θ(M) public-key work is exactly what Figure 4/7 show SNIPs avoiding. *)

module B = Prio_bigint.Bigint
module Rng = Prio_crypto.Rng

type t = {
  a0 : Group.elt;
  a1 : Group.elt;
  c0 : B.t;
  c1 : B.t;
  z0 : B.t;
  z1 : B.t;
}

let proof_bytes = (2 * Group.elt_bytes_len) + (4 * 32)

(* statement components: y0 = C (x = 0 branch), y1 = C / g (x = 1 branch);
   both are h^r for the correct branch. *)
let branches (c : Pedersen.commitment) =
  (c, Group.mul c (Group.inv Group.g))

let prove rng ~(bit : int) ~(commitment : Pedersen.commitment)
    ~(randomness : B.t) : t =
  if bit <> 0 && bit <> 1 then invalid_arg "Bitproof.prove: bit must be 0 or 1";
  let y0, y1 = branches commitment in
  (* simulate the false branch, run Schnorr honestly on the true one *)
  let c_fake = Group.random_exponent rng in
  let z_fake = Group.random_exponent rng in
  let y_fake = if bit = 0 then y1 else y0 in
  (* A_fake = h^z_fake · y_fake^{-c_fake} *)
  let a_fake =
    Group.mul (Group.exp Group.h z_fake)
      (Group.inv (Group.exp y_fake c_fake))
  in
  let w = Group.random_exponent rng in
  let a_real = Group.exp Group.h w in
  let a0, a1 = if bit = 0 then (a_real, a_fake) else (a_fake, a_real) in
  let c =
    Group.challenge
      [ Group.to_bytes commitment; Group.to_bytes a0; Group.to_bytes a1 ]
  in
  let c_real = B.erem (B.sub c c_fake) Group.q in
  let z_real = B.erem (B.add w (B.mul c_real randomness)) Group.q in
  if bit = 0 then { a0; a1; c0 = c_real; c1 = c_fake; z0 = z_real; z1 = z_fake }
  else { a0; a1; c0 = c_fake; c1 = c_real; z0 = z_fake; z1 = z_real }

let verify (commitment : Pedersen.commitment) (pi : t) : bool =
  let y0, y1 = branches commitment in
  let c =
    Group.challenge
      [ Group.to_bytes commitment; Group.to_bytes pi.a0; Group.to_bytes pi.a1 ]
  in
  B.equal (B.erem (B.add pi.c0 pi.c1) Group.q) c
  && Group.equal (Group.exp Group.h pi.z0)
       (Group.mul pi.a0 (Group.exp y0 pi.c0))
  && Group.equal (Group.exp Group.h pi.z1)
       (Group.mul pi.a1 (Group.exp y1 pi.c1))

(* ------------------------------------------------------------------ *)
(* Vector-level client submission for the baseline scheme.             *)
(* ------------------------------------------------------------------ *)

type submission = {
  commitments : Pedersen.commitment array;
  proofs : t array;
  openings : Pedersen.opening array;
      (** shares of the openings go to the servers; kept whole here for the
          single-process pipeline, split by the caller *)
}

(** Commit to every bit of the vector and prove each is 0/1 — the client
    side of the baseline scheme. *)
let client_encode rng (bits : int array) : submission =
  let n = Array.length bits in
  let commitments = Array.make n Group.one in
  let openings = Array.make n Pedersen.{ value = B.zero; randomness = B.zero } in
  let proofs =
    Array.init n (fun i ->
        let c, o = Pedersen.commit_fresh rng ~value:(B.of_int bits.(i)) in
        commitments.(i) <- c;
        openings.(i) <- o;
        prove rng ~bit:bits.(i) ~commitment:c ~randomness:o.Pedersen.randomness)
  in
  { commitments; proofs; openings }

(** Server-side check of a full submission. *)
let server_verify (sub : submission) : bool =
  let ok = ref true in
  Array.iteri
    (fun i c -> if not (verify c sub.proofs.(i)) then ok := false)
    sub.commitments;
  !ok

(** The Schnorr group for the NIZK baseline and signatures: the order-q
    subgroup of quadratic residues modulo a 256-bit safe prime p = 2q + 1.

    Stands in for the paper's OpenSSL NIST P-256 (see DESIGN.md,
    "Substitutions"): what the comparison needs is a group where
    exponentiation costs what elliptic-curve scalar multiplication costs
    relative to field work, i.e. dominates everything else. *)

module B := Prio_bigint.Bigint

val p : B.t
(** The safe prime modulus (primality re-verified in the tests). *)

val q : B.t
(** The subgroup order, (p − 1) / 2. *)

type elt
(** A group element. *)

val elt_bytes_len : int
(** Serialized element width (32). *)

val g : elt
(** Generator of the order-q subgroup. *)

val h : elt
(** Independent second generator for Pedersen commitments, derived
    nothing-up-my-sleeve as g^SHA256("prio-nizk-h"). *)

val one : elt
val mul : elt -> elt -> elt

val exp : elt -> B.t -> elt
(** [exp b e] is b^e; the cost unit of the NIZK comparison. *)

val inv : elt -> elt
val equal : elt -> elt -> bool
val to_bytes : elt -> Bytes.t

val random_exponent : Prio_crypto.Rng.t -> B.t
(** Uniform in [0, q). *)

val challenge : Bytes.t list -> B.t
(** Fiat–Shamir challenge in Z_q: SHA-256 over the concatenated parts. *)

(** A Schnorr group: the order-q subgroup of quadratic residues modulo a
    256-bit safe prime p = 2q + 1.

    This is the exponentiation substrate for the paper's NIZK comparison
    scheme (§6: a discrete-log-based scheme "similar to the cryptographically
    verifiable protocol of Kursawe et al." built there on OpenSSL P-256).
    A multiplicative group gives the same Θ(M)-exponentiations cost shape as
    an elliptic-curve group; DESIGN.md records the substitution. *)

module B = Prio_bigint.Bigint
module Rng = Prio_crypto.Rng

(* 256-bit safe prime found by deterministic search (seed 42); primality of
   both p and q = (p-1)/2 is re-verified in the test suite. *)
let p =
  B.of_string
    "83186632843099325209464072496031207630673728219227764602085684493809485398607"

let q = B.shift_right (B.pred p) 1

let ctx = B.Mont.create p

type elt = B.Mont.elt

let elt_bytes_len = 32

(* g = 4 is a square, hence generates the order-q subgroup. *)
let g = B.Mont.to_mont ctx (B.of_int 4)

(* Second, nothing-up-my-sleeve generator for Pedersen commitments:
   h = g^{SHA256("prio-nizk-h") mod q}. *)
let h =
  let d = Prio_crypto.Sha256.digest_string "prio-nizk-h" in
  B.Mont.pow ctx g (B.erem (B.of_bytes_be d) q)

let one = B.Mont.one ctx
let mul = B.Mont.mul ctx
let exp b e = B.Mont.pow ctx b e

let inv x = exp x (B.pred q) (* x^(q-1) = x^{-1} for order-q elements *)

let equal = B.Mont.equal

let to_bytes x = B.to_bytes_be (B.Mont.of_mont ctx x) elt_bytes_len

let random_exponent rng =
  B.random_below ~rand_limb:(fun () -> Rng.limb31 rng) q

(** Hash group elements and context to a challenge in Z_q (Fiat–Shamir). *)
let challenge (parts : Bytes.t list) : B.t =
  let c = Prio_crypto.Sha256.init () in
  List.iter (Prio_crypto.Sha256.update c) parts;
  B.erem (B.of_bytes_be (Prio_crypto.Sha256.finalize c)) q

(** Schnorr signatures over the {!Group}.

    The paper's §7 selective-DoS / Sybil defense has clients sign their
    submissions under registered public keys so the servers can wait for a
    threshold of distinct registered clients before publishing. The paper
    assumes a PKI and "digital signatures [71]"; this is that substrate. *)

module B = Prio_bigint.Bigint
module Rng = Prio_crypto.Rng

type secret_key = B.t
type public_key = Group.elt

type signature = { challenge : B.t; response : B.t }

let signature_bytes = 64

let keygen rng : secret_key * public_key =
  let sk = Group.random_exponent rng in
  (sk, Group.exp Group.g sk)

let challenge_of ~commitment ~public_key msg =
  Group.challenge [ Group.to_bytes commitment; Group.to_bytes public_key; msg ]

let sign rng (sk : secret_key) (msg : Bytes.t) : signature =
  let k = Group.random_exponent rng in
  let commitment = Group.exp Group.g k in
  let public_key = Group.exp Group.g sk in
  let challenge = challenge_of ~commitment ~public_key msg in
  let response = B.erem (B.add k (B.mul challenge sk)) Group.q in
  { challenge; response }

let verify (pk : public_key) (msg : Bytes.t) (s : signature) : bool =
  (* recompute R = g^response · pk^{-challenge} and check the challenge *)
  let r =
    Group.mul (Group.exp Group.g s.response)
      (Group.inv (Group.exp pk s.challenge))
  in
  B.equal s.challenge (challenge_of ~commitment:r ~public_key:pk msg)

(** Analytic cost model for a zkSNARK alternative — Figure 7's
    "SNARK (Est.)" series, reproduced with the paper's own estimation
    procedure: prover cost = (Valid gates + s·L·300 subset-sum-hash gates)
    × exponentiations per gate × measured exponentiation time. *)

type params = {
  exps_per_gate : float;
  gates_per_hashed_element : int;
}

val default : params
(** The paper's conservative constants: 3 exponentiations per R1CS gate,
    300 gates per hashed element. *)

val measure_exp_seconds : ?iters:int -> unit -> float
(** Time one {!Group} exponentiation (the pricing unit). *)

val client_seconds :
  ?params:params -> exp_seconds:float -> mul_gates:int -> l:int -> s:int ->
  unit -> float
(** Estimated prover seconds for an L-element submission to s servers. *)

val proof_bytes : int
(** 288 — Pinocchio proofs are constant-size, the SNARK's one advantage
    (Table 2). *)

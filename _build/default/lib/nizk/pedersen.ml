(** Pedersen commitments over the Schnorr group: C = g^x · h^r.

    Perfectly hiding, computationally binding; the NIZK baseline commits to
    every coordinate of the client's submission and proves each committed
    value is a bit. *)

module B = Prio_bigint.Bigint
module Rng = Prio_crypto.Rng

type commitment = Group.elt

type opening = { value : B.t; randomness : B.t }

let commit ~(value : B.t) ~(randomness : B.t) : commitment =
  Group.mul (Group.exp Group.g value) (Group.exp Group.h randomness)

let commit_fresh rng ~(value : B.t) : commitment * opening =
  let randomness = Group.random_exponent rng in
  (commit ~value ~randomness, { value; randomness })

let verify (c : commitment) (o : opening) : bool =
  Group.equal c (commit ~value:o.value ~randomness:o.randomness)

(** Homomorphic combination: commit(x1+x2, r1+r2) = C1 · C2 — how the
    servers aggregate committed submissions. *)
let combine = Group.mul

lib/nizk/group.mli: Bytes Prio_bigint Prio_crypto

lib/nizk/schnorr.mli: Bytes Group Prio_bigint Prio_crypto

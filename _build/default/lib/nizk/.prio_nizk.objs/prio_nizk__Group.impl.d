lib/nizk/group.ml: Bytes List Prio_bigint Prio_crypto

lib/nizk/pedersen.mli: Group Prio_bigint Prio_crypto

lib/nizk/bitproof.ml: Array Group Pedersen Prio_bigint Prio_crypto

lib/nizk/snark_estimate.mli:

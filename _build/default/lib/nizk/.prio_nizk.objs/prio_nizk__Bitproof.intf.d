lib/nizk/bitproof.mli: Group Pedersen Prio_bigint Prio_crypto

lib/nizk/schnorr.ml: Bytes Group Prio_bigint Prio_crypto

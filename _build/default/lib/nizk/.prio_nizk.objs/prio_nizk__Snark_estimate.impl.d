lib/nizk/snark_estimate.ml: Group Prio_crypto Sys Unix

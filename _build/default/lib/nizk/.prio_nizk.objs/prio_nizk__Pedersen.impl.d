lib/nizk/pedersen.ml: Group Prio_bigint Prio_crypto

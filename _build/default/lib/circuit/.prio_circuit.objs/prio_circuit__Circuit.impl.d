lib/circuit/circuit.ml: Array List Prio_field Stdlib

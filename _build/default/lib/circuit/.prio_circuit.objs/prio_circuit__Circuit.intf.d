lib/circuit/circuit.mli: Prio_field

lib/field/proth.mli: Field_intf

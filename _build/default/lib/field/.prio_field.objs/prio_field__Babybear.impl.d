lib/field/babybear.ml: Array Bytes Char Format Int Lazy Prio_bigint Prio_crypto

lib/field/f265.ml: Proth

lib/field/counting.ml: Field_intf

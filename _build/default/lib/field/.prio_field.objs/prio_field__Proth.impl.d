lib/field/proth.ml: Array Bytes Field_intf Format Lazy Prio_bigint Prio_crypto

lib/field/f87.ml: Proth

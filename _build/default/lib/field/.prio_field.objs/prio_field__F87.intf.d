lib/field/f87.mli: Field_intf

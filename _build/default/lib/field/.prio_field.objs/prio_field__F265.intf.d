lib/field/f265.mli: Field_intf

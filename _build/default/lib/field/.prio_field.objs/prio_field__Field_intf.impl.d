lib/field/field_intf.ml: Bytes Format Prio_bigint Prio_crypto

lib/field/babybear.mli: Field_intf

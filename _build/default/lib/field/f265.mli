(** The 265-bit FFT-friendly prime field from Table 3: p = 291·2^256 + 1
    (two-adicity 256, generator 10). Sized for aggregates that must not
    wrap even with wide fixed-point encodings and squared terms — e.g. the
    regression AFE over 14-bit features with billions of clients. *)

include Field_intf.S

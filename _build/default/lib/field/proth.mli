(** Prime fields from Proth primes p = c·2^k + 1, built on the Montgomery
    arithmetic of {!Prio_bigint.Bigint.Mont} — the replacement for the
    paper's FLINT-backed FFT-friendly fields. The huge power-of-two
    factor of p − 1 gives two-adicity k, so NTTs of any size up to 2^k
    apply. Constants (primality shape, generator order) are checked at
    instantiation. *)

module type Config = sig
  val name : string

  val prime : string
  (** decimal or 0x-hex *)

  val generator : int
  (** generator of the full multiplicative group *)

  val two_adicity : int

  val odd_cofactor : string
  (** c, the odd part of p − 1 *)
end

module Make (C : Config) : Field_intf.S

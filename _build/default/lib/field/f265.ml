(* The 265-bit field from Table 3, large enough for sums that must not wrap
   even with billions of clients and wide integers, and for embedding
   fixed-point regression features. p = 291 * 2^256 + 1. *)

include Proth.Make (struct
  let name = "F265"
  let prime = "0x1230000000000000000000000000000000000000000000000000000000000000001"
  let generator = 10
  let two_adicity = 256
  let odd_cofactor = "291"
end)

(* Instrumented field: wraps any field instance and counts operations.

   Table 2 of the paper is an *asymptotic* comparison (client performs
   Θ(M log M) field multiplications and zero exponentiations, servers
   exchange Θ(1) elements); wrapping the SNIP in this functor lets the test
   suite verify those operation counts empirically rather than by
   inspection. *)

type stats = {
  mutable muls : int;
  mutable adds : int;
  mutable invs : int;
}

module Make (F : Field_intf.S) : sig
  include Field_intf.S

  val stats : stats
  val reset : unit -> unit
end = struct
  include F

  let stats = { muls = 0; adds = 0; invs = 0 }

  let reset () =
    stats.muls <- 0;
    stats.adds <- 0;
    stats.invs <- 0

  let add a b =
    stats.adds <- stats.adds + 1;
    F.add a b

  let sub a b =
    stats.adds <- stats.adds + 1;
    F.sub a b

  let mul a b =
    stats.muls <- stats.muls + 1;
    F.mul a b

  let sqr a =
    stats.muls <- stats.muls + 1;
    F.sqr a

  let inv a =
    stats.invs <- stats.invs + 1;
    F.inv a

  let div a b =
    stats.invs <- stats.invs + 1;
    stats.muls <- stats.muls + 1;
    F.div a b
end

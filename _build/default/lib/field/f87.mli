(** The 87-bit FFT-friendly prime field used throughout the paper's
    evaluation: p = 249·2^79 + 1 (two-adicity 79, generator 5).

    This is the default field for SNIPs and most AFEs; its order is large
    enough that the polynomial identity test's soundness error (2M+1)/|F|
    is ≈ 2^-60 even for million-gate circuits, and sums of 4–30-bit client
    values cannot wrap for any realistic client count. *)

include Field_intf.S

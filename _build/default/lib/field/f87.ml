(* The 87-bit FFT-friendly field used throughout the paper's evaluation
   ("Unless noted otherwise, our evaluations use an FFT-friendly 87-bit
   field"). p = 249 * 2^79 + 1; primality is re-verified in the tests. *)

include Proth.Make (struct
  let name = "F87"
  let prime = "0x7c80000000000000000001" (* 249 * 2^79 + 1 *)
  let generator = 5
  let two_adicity = 79
  let odd_cofactor = "249"
end)

(** The single-word "BabyBear" field p = 2^31 − 2^27 + 1 (two-adicity 27,
    generator 31). Elements are native [int]s in [0, p), so a product fits
    OCaml's 63-bit integer and multiplication is one machine [mod] — an
    order of magnitude faster than the bignum fields, at the cost of a
    larger soundness error ((2M+1)/2^31 per identity test) and tighter
    overflow headroom. Used for high-throughput runs and as a cross-check
    target for the generic Montgomery implementation. *)

include Field_intf.S with type t = int

(* The single-word "BabyBear" field, p = 2^31 - 2^27 + 1 = 15 * 2^27 + 1.

   All values live in [0, p) inside a native int, and a product of two
   residues (< 2^62) fits in OCaml's 63-bit int, so [mul] is a single
   multiply-and-mod. Two-adicity is 27, enough for NTTs of size 2^27. *)

module B = Prio_bigint.Bigint

type t = int

let name = "BabyBear(2^31-2^27+1)"
let p = 2013265921
let order = B.of_int p
let num_bits = 31
let bytes_len = 4
let two_adicity = 27
let generator = 31 (* checked at startup below *)

let zero = 0
let one = 1
let two = 2

let of_int x =
  let r = x mod p in
  if r < 0 then r + p else r

let to_bigint x = B.of_int x
let of_bigint x = B.to_int_exn (B.erem x order)

let add a b =
  let s = a + b in
  if s >= p then s - p else s

let sub a b = if a >= b then a - b else a - b + p
let neg a = if a = 0 then 0 else p - a
let mul a b = a * b mod p
let sqr a = a * a mod p

let pow b e =
  if e < 0 then invalid_arg "Babybear.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else go (if e land 1 = 1 then mul acc b else acc) (sqr b) (e lsr 1)
  in
  go one b e

let inv a = if a = 0 then raise Division_by_zero else pow a (p - 2)
let div a b = mul a (inv b)

let pow_big b e =
  let bits = B.num_bits e in
  let result = ref one and acc = ref b in
  for i = 0 to bits - 1 do
    if B.testbit e i then result := mul !result !acc;
    if i < bits - 1 then acc := sqr !acc
  done;
  !result

let equal = Int.equal
let is_zero x = x = 0
let is_one x = x = 1

let random rng = Prio_crypto.Rng.int_below rng p
let random_nonzero rng = 1 + Prio_crypto.Rng.int_below rng (p - 1)

let to_bytes x =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((x lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((x lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((x lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (x land 0xff));
  b

let of_bytes b =
  if Bytes.length b <> 4 then invalid_arg "Babybear.of_bytes: need 4 bytes";
  let v =
    (Char.code (Bytes.get b 0) lsl 24)
    lor (Char.code (Bytes.get b 1) lsl 16)
    lor (Char.code (Bytes.get b 2) lsl 8)
    lor Char.code (Bytes.get b 3)
  in
  if v >= p then invalid_arg "Babybear.of_bytes: not canonical";
  v

let to_string = string_of_int
let pp fmt x = Format.pp_print_int fmt x

(* Roots of unity: g has full order p - 1 = 15 * 2^27; g^15 generates the
   2^27-torsion. Verified once at module initialization. *)
let () =
  (* generator must have full order: check against each prime factor of p-1 *)
  assert (not (equal (pow generator ((p - 1) / 2)) one));
  assert (not (equal (pow generator ((p - 1) / 3)) one));
  assert (not (equal (pow generator ((p - 1) / 5)) one))

let root_table =
  lazy
    (let t = Array.make (two_adicity + 1) one in
     t.(two_adicity) <- pow generator 15;
     for k = two_adicity - 1 downto 0 do
       t.(k) <- sqr t.(k + 1)
     done;
     t)

let root_of_unity k =
  if k < 0 || k > two_adicity then
    invalid_arg (name ^ ".root_of_unity: out of range");
  (Lazy.force root_table).(k)

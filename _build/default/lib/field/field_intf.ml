(** The prime-field interface every Prio component is written against.

    All Prio arithmetic — secret shares, SNIP polynomials, AFE encodings —
    happens in a prime field F_p. The paper evaluates an 87-bit and a 265-bit
    FFT-friendly field ({!F87}, {!F265}); we additionally provide a fast
    single-word field ({!Babybear}) for high-throughput runs. Every instance
    is FFT-friendly: p − 1 is divisible by a large power of two so the NTT in
    {!Prio_poly.Ntt} applies. *)

module type S = sig
  type t

  val name : string

  val order : Prio_bigint.Bigint.t
  (** The prime p. *)

  val num_bits : int
  (** Bits of p. *)

  val bytes_len : int
  (** Width of the fixed-size serialization, ceil(num_bits / 8). *)

  (** {1 Constants and conversions} *)

  val zero : t
  val one : t
  val two : t

  val of_int : int -> t
  (** Reduction mod p; negative inputs map to [p - |x| mod p]. *)

  val to_bigint : t -> Prio_bigint.Bigint.t
  (** Canonical representative in [0, p). *)

  val of_bigint : Prio_bigint.Bigint.t -> t
  (** Euclidean reduction mod p. *)

  (** {1 Arithmetic} *)

  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val mul : t -> t -> t
  val sqr : t -> t

  val inv : t -> t
  (** @raise Division_by_zero on zero. *)

  val div : t -> t -> t
  val pow : t -> int -> t
  (** Exponent >= 0. *)

  val pow_big : t -> Prio_bigint.Bigint.t -> t

  (** {1 Predicates} *)

  val equal : t -> t -> bool
  val is_zero : t -> bool
  val is_one : t -> bool

  (** {1 Randomness} *)

  val random : Prio_crypto.Rng.t -> t
  (** Uniform over the field. *)

  val random_nonzero : Prio_crypto.Rng.t -> t

  (** {1 Serialization and printing} *)

  val to_bytes : t -> Bytes.t
  (** Fixed-width big-endian canonical encoding, [bytes_len] bytes. *)

  val of_bytes : Bytes.t -> t
  (** @raise Invalid_argument if the encoding is not canonical (>= p) or has
      the wrong width. *)

  val to_string : t -> string
  val pp : Format.formatter -> t -> unit

  (** {1 FFT support} *)

  val two_adicity : int
  (** Largest k with 2^k | p − 1. *)

  val root_of_unity : int -> t
  (** [root_of_unity k] is a primitive 2^k-th root of unity, 0 <= k <=
      [two_adicity].
      @raise Invalid_argument for k out of range. *)
end

(** The Prio client (paper §5.1 / Appendix H step 1): AFE-encode, attach
    proof material for the chosen robustness mode, secret-share the flat
    vector with PRG compression, and seal one authenticated packet per
    server. *)

module Make (F : Prio_field.Field_intf.S) : sig
  module C : module type of Prio_circuit.Circuit.Make (F)
  module Snip : module type of Prio_snip.Snip.Make (F)
  module Sh : module type of Prio_share.Share.Make (F)

  (** How a submission protects robustness. *)
  type mode =
    | Robust_snip of C.t
        (** the client knows Valid and proves it with a SNIP (§4.2) *)
    | Robust_mpc of int
        (** Valid is a server secret with this many mul gates; the client
            ships triples plus a triple SNIP (§4.4) *)
    | No_robustness  (** plain secret sharing — the §3 baseline *)

  val payload_elements : mode:mode -> l:int -> int
  (** Flat share-vector length a server expects for an l-element
      encoding. *)

  val plain_vector : rng:Prio_crypto.Rng.t -> mode:mode -> F.t array -> F.t array
  (** encoding ‖ proof material, before sharing. *)

  val payloads :
    rng:Prio_crypto.Rng.t -> mode:mode -> num_servers:int -> F.t array ->
    Sh.compressed array
  (** Per-server compressed share payloads. *)

  type packets = {
    nonce : Bytes.t;  (** submission id for replay protection *)
    sealed : Bytes.t array;  (** one authenticated packet per server *)
    upload_bytes : int;
  }

  val nonce_len : int

  val seal :
    rng:Prio_crypto.Rng.t -> client_id:int -> master:Bytes.t ->
    Sh.compressed array -> packets

  val submit :
    rng:Prio_crypto.Rng.t -> mode:mode -> num_servers:int -> client_id:int ->
    master:Bytes.t -> F.t array -> packets
  (** The one-call client pipeline: encode-to-packets. *)
end

(** Deterministic (seeded) fault injection for the TCP runtime: each
    frame crossing an injected read/write path is passed, dropped,
    delayed, corrupted, truncated, or escalated to a disconnect or a
    process crash, according to a policy rolled on a ChaCha20 RNG — so
    chaos runs replay exactly from (seed, policy, traffic order). *)

type policy = {
  p_drop : float;  (** frame silently vanishes *)
  p_delay : float;  (** frame delivered after [delay] seconds *)
  delay : float;
  p_corrupt : float;  (** one byte of the frame body is flipped *)
  p_truncate : float;  (** frame cut short (possibly to empty) *)
  p_disconnect : float;  (** connection closed instead of delivering *)
  p_crash : float;  (** the injecting process exits (server chaos) *)
}

val none : policy

val drop : float -> policy
val corrupt : float -> policy
val truncate : float -> policy
val disconnect : float -> policy
val crash : float -> policy
val slow : p:float -> delay:float -> policy

type verdict =
  | Deliver of Bytes.t  (** pass the frame on (possibly mangled) *)
  | Drop  (** pretend it was sent / never arrived *)
  | Disconnect  (** sever the connection *)
  | Crash  (** the process hosting this [t] should die *)

type t

val create : seed:string -> policy -> t

val decide : t -> Bytes.t -> verdict
(** Roll the policy for one frame. Fault classes are mutually exclusive
    on one draw; a delay (sleep, already performed) composes with
    [Deliver]. *)

val seen : t -> int
(** Frames that crossed this injector. *)

val injected : t -> int
(** Frames that were faulted (including delays). *)

lib/proto/pipeline.ml: Array Client Cluster List Prio_bigint Prio_circuit Prio_crypto Prio_field Prio_nizk Unix

lib/proto/compressed.ml: Array List Prio_crypto Prio_field Prio_share

lib/proto/dp.ml: Float Prio_crypto

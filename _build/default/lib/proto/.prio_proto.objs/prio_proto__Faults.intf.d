lib/proto/faults.mli: Bytes

lib/proto/dp.mli: Prio_crypto

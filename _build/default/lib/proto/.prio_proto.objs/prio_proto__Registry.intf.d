lib/proto/registry.mli: Bytes Prio_crypto Prio_nizk

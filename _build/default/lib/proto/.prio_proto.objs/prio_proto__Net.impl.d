lib/proto/net.ml: Array Bytes Char Client Faults Float Fun Hashtbl List Printexc Printf Prio_circuit Prio_crypto Prio_field Prio_share Prio_snip Retry Server Sys Unix Wire

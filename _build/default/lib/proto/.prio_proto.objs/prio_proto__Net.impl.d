lib/proto/net.ml: Array Bytes Char Client Hashtbl List Option Printexc Printf Prio_circuit Prio_crypto Prio_field Prio_share Prio_snip Server Unix Wire

lib/proto/faults.ml: Bytes Char Prio_crypto Retry

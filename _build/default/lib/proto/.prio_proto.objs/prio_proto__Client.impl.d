lib/proto/client.ml: Array Bytes Prio_circuit Prio_crypto Prio_field Prio_share Prio_snip Wire

lib/proto/parallel.mli: Client Cluster Prio_field

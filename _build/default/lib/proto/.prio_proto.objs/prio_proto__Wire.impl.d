lib/proto/wire.ml: Array Bytes Prio_crypto Prio_field Prio_share

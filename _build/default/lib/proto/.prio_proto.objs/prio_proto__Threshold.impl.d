lib/proto/threshold.ml: Array List Prio_crypto Prio_field Prio_poly Prio_share

lib/proto/server.ml: Array Bytes Dp Hashtbl Prio_circuit Prio_crypto Prio_field Prio_share Prio_snip Wire

lib/proto/retry.ml: Float Prio_crypto Unix

lib/proto/parallel.ml: Array Client Cluster Domain Fun Prio_field Seq

lib/proto/threshold.mli: Prio_crypto Prio_field

lib/proto/compressed.mli: Prio_crypto Prio_field

lib/proto/cluster.ml: Array Bytes Client Option Prio_circuit Prio_crypto Prio_field Prio_share Prio_snip Server Wire

lib/proto/net.mli: Bytes Prio_circuit Prio_crypto Prio_field Unix

lib/proto/net.mli: Bytes Faults Prio_circuit Prio_crypto Prio_field Retry Unix

lib/proto/registry.ml: Array Bytes Hashtbl Printf Prio_crypto Prio_nizk

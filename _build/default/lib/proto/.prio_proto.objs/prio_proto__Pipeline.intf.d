lib/proto/pipeline.mli: Client Cluster Prio_bigint Prio_crypto Prio_field Prio_nizk

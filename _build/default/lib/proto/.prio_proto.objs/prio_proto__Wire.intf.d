lib/proto/wire.mli: Bytes Prio_field Prio_share

lib/proto/server.mli: Bytes Hashtbl Prio_crypto Prio_field Prio_share

lib/proto/retry.mli: Prio_crypto

lib/proto/cluster.mli: Bytes Client Prio_circuit Prio_crypto Prio_field Prio_snip Server

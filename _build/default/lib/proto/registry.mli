(** Client registration, signed submissions, epochs, and gated
    publication — the paper's §7 defenses against selective
    denial-of-service and Sybil attacks.

    Servers keep a registry of client public keys; clients Schnorr-sign
    (client id, epoch, packet digest); each registered client counts at
    most once per epoch; and the servers refuse to publish until
    [min_contributors] distinct registered clients are included, so a
    network adversary cannot shrink the aggregate down to one victim. *)

type t

val create : min_contributors:int -> t

val register : t -> client_id:int -> public_key:Prio_nizk.Schnorr.public_key -> unit
(** @raise Invalid_argument if the client is already registered. *)

val registered : t -> client_id:int -> bool
val num_registered : t -> int

val epoch : t -> int

val digest_packets : Bytes.t array -> Bytes.t
(** SHA-256 over the client's sealed packets, in server order. *)

val signing_payload : client_id:int -> epoch:int -> packets_digest:Bytes.t -> Bytes.t
(** The exact byte string a client signs: binds identity, epoch and
    packets, so signatures cannot be replayed across data or epochs. *)

val client_sign :
  Prio_crypto.Rng.t -> secret_key:Prio_nizk.Schnorr.secret_key ->
  client_id:int -> epoch:int -> Bytes.t array -> Prio_nizk.Schnorr.signature

val accept_submission :
  t -> client_id:int -> sealed:Bytes.t array ->
  signature:Prio_nizk.Schnorr.signature -> bool
(** Registered, correctly signed, first contribution this epoch. *)

val contributors : t -> int
(** Distinct registered clients accepted this epoch. *)

val may_publish : t -> bool
(** The anti-selective-DoS gate: true once enough distinct registered
    clients are included. *)

val next_epoch : t -> unit
(** Advance the epoch and reset the contributor set. *)

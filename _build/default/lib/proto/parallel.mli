(** Multicore batch verification: submissions are independent, so a batch
    shards across OCaml 5 domains, each owning a private cluster replica
    (no shared mutable state, no locks), merged afterwards — the
    within-machine analogue of Figure 5's horizontal scaling. *)

module Make (F : Prio_field.Field_intf.S) : sig
  module Cluster : module type of Cluster.Make (F)
  module Client : module type of Client.Make (F)

  val process :
    make_replica:(unit -> Cluster.t) ->
    packets:(int * Client.packets) array -> domains:int -> Cluster.t * int
  (** Verify the batch on [domains] cores; returns the merged cluster and
      the accepted count. [make_replica] must build identical deployments
      (same circuit, server count, master) with independent RNGs. *)
end

(** Two-server aggregation with DPF-compressed one-hot submissions
    (Appendix G "Share compression"): the client sends each server one
    O(log B) distributed-point-function key instead of a length-B share
    vector; the servers expand locally and accumulate. Robustness for
    compressed shares is future work, as in the paper — this is the
    compressed analogue of the no-robustness pipeline. *)

module Make (F : Prio_field.Field_intf.S) : sig
  type t

  val create : bits:int -> t
  (** Domain is [0, 2^bits); two servers. *)

  val domain : t -> int

  val submit : Prio_crypto.Rng.t -> t -> value:int -> int
  (** Submit one vote; returns the client's upload in bytes. *)

  val publish : t -> F.t array
  (** The aggregate histogram. *)

  val explicit_upload_bytes : t -> int
  (** What the same vote costs as explicit two-server shares. *)
end

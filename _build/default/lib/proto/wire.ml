(** Wire format for Prio messages.

    Every field element is serialized to its fixed-width canonical encoding,
    so message sizes measured by the cluster's byte counters are exactly the
    bytes a real deployment would put on the wire (this is what Figure 6
    reports). Share payloads carry a one-byte tag distinguishing an explicit
    vector from a 32-byte PRG seed (the Appendix I compressed form). *)

module Make (F : Prio_field.Field_intf.S) = struct
  module Sh = Prio_share.Share.Make (F)

  let vector_to_bytes (v : F.t array) : Bytes.t =
    let w = F.bytes_len in
    let out = Bytes.create (Array.length v * w) in
    Array.iteri (fun i x -> Bytes.blit (F.to_bytes x) 0 out (i * w) w) v;
    out

  let vector_of_bytes (b : Bytes.t) : F.t array =
    let w = F.bytes_len in
    let len = Bytes.length b in
    if len mod w <> 0 then invalid_arg "Wire.vector_of_bytes: ragged payload";
    Array.init (len / w) (fun i -> F.of_bytes (Bytes.sub b (i * w) w))

  (** Non-raising variant for frames arriving off the network, where a
      ragged or non-canonical payload is peer misbehaviour to degrade
      on, not a programming error to crash on. *)
  let vector_of_bytes_opt (b : Bytes.t) : F.t array option =
    match vector_of_bytes b with
    | v -> Some v
    | exception Invalid_argument _ -> None

  (** Parse exactly two field elements at [off]; [None] if the slice is
      missing, over-long, or non-canonical. Shape of every SNIP gossip
      payload ((d,e) openings, (σ,ζ) verdicts). *)
  let field_pair_opt (b : Bytes.t) ~off : (F.t * F.t) option =
    let w = F.bytes_len in
    if Bytes.length b <> off + (2 * w) then None
    else
      match
        (F.of_bytes (Bytes.sub b off w), F.of_bytes (Bytes.sub b (off + w) w))
      with
      | pair -> Some pair
      | exception Invalid_argument _ -> None

  let tag_explicit = '\000'
  let tag_seed = '\001'

  let payload_to_bytes (c : Sh.compressed) : Bytes.t =
    match c with
    | Sh.Seed seed ->
      assert (Bytes.length seed = Prio_crypto.Rng.seed_bytes);
      Bytes.cat (Bytes.make 1 tag_seed) seed
    | Sh.Explicit v -> Bytes.cat (Bytes.make 1 tag_explicit) (vector_to_bytes v)

  let payload_of_bytes (b : Bytes.t) : Sh.compressed =
    if Bytes.length b < 1 then invalid_arg "Wire.payload_of_bytes: empty";
    let body = Bytes.sub b 1 (Bytes.length b - 1) in
    match Bytes.get b 0 with
    | c when c = tag_seed ->
      if Bytes.length body <> Prio_crypto.Rng.seed_bytes then
        invalid_arg "Wire.payload_of_bytes: bad seed length";
      Sh.Seed body
    | c when c = tag_explicit -> Sh.Explicit (vector_of_bytes body)
    | _ -> invalid_arg "Wire.payload_of_bytes: unknown tag"

  (** Size in bytes of a serialized element count. *)
  let elements_bytes n = n * F.bytes_len
end

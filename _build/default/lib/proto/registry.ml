(** Client registration, signed submissions, and gated publication —
    the paper's §7 defenses against selective denial-of-service and Sybil
    attacks.

    A network adversary who blocks all honest clients but one can read that
    client's value out of the "aggregate". The standard defense the paper
    deploys: servers keep a list of registered client public keys, clients
    sign their submissions, and the servers refuse to publish until a
    threshold of {e distinct registered} clients have contributed to the
    epoch. Epochs also scope replay protection and give the collection a
    time structure. *)

module Schnorr = Prio_nizk.Schnorr

type t = {
  keys : (int, Schnorr.public_key) Hashtbl.t;
  mutable contributed : (int, unit) Hashtbl.t; (* this epoch *)
  mutable epoch : int;
  min_contributors : int;
}

let create ~min_contributors =
  if min_contributors < 1 then invalid_arg "Registry.create: threshold < 1";
  {
    keys = Hashtbl.create 64;
    contributed = Hashtbl.create 64;
    epoch = 0;
    min_contributors;
  }

let register t ~client_id ~public_key =
  if Hashtbl.mem t.keys client_id then
    invalid_arg "Registry.register: client already registered";
  Hashtbl.replace t.keys client_id public_key

let registered t ~client_id = Hashtbl.mem t.keys client_id
let num_registered t = Hashtbl.length t.keys
let epoch t = t.epoch

(** What a client signs: its identity, the epoch, and the digest of the
    packet set it uploaded, so a signature cannot be replayed for other
    data or in a later epoch. *)
let signing_payload ~client_id ~epoch ~packets_digest =
  Bytes.cat
    (Bytes.of_string (Printf.sprintf "prio-submission|%d|%d|" client_id epoch))
    packets_digest

let digest_packets (sealed : Bytes.t array) =
  let ctx = Prio_crypto.Sha256.init () in
  Array.iter (Prio_crypto.Sha256.update ctx) sealed;
  Prio_crypto.Sha256.finalize ctx

let client_sign rng ~secret_key ~client_id ~epoch (sealed : Bytes.t array) :
    Schnorr.signature =
  Schnorr.sign rng secret_key
    (signing_payload ~client_id ~epoch ~packets_digest:(digest_packets sealed))

(** Server-side acceptance: the client must be registered, the signature
    must cover these packets in this epoch, and each registered client
    counts at most once per epoch. *)
let accept_submission t ~client_id ~(sealed : Bytes.t array) ~signature : bool =
  match Hashtbl.find_opt t.keys client_id with
  | None -> false
  | Some pk ->
    if Hashtbl.mem t.contributed client_id then false
    else if
      Schnorr.verify pk
        (signing_payload ~client_id ~epoch:t.epoch
           ~packets_digest:(digest_packets sealed))
        signature
    then begin
      Hashtbl.replace t.contributed client_id ();
      true
    end
    else false

let contributors t = Hashtbl.length t.contributed

(** May the servers publish this epoch's aggregate? Only once enough
    distinct registered clients are included (the anti-selective-DoS
    gate). *)
let may_publish t = contributors t >= t.min_contributors

(** Close the epoch: resets the contributor set (and hence the per-epoch
    replay scope) and advances the epoch counter. *)
let next_epoch t =
  t.epoch <- t.epoch + 1;
  t.contributed <- Hashtbl.create 64

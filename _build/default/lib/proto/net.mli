(** A TCP deployment of Prio: one OS process per server speaking
    length-prefixed frames over real sockets, clients uploading one
    sealed packet per server, and the leader driving the two SNIP gossip
    rounds over persistent server-to-server connections — the shape of
    the paper's five-data-center cluster. See the implementation header
    for the frame grammar. *)

module Make (F : Prio_field.Field_intf.S) : sig
  module C : module type of Prio_circuit.Circuit.Make (F)

  type config = {
    circuit : C.t;
    trunc_len : int;
    num_servers : int;
    master : Bytes.t;
    batch_seed : Bytes.t;
        (** all servers derive the shared batch secrets (r, z) from this;
            a deployment would distribute it over the authenticated
            server-to-server channels *)
  }

  val serve :
    config -> id:int -> listen_fd:Unix.file_descr ->
    follower_addrs:Unix.sockaddr array -> unit
  (** Run one server's event loop until an [X] frame arrives; the leader
      (id 0) dials the followers. The listener must already be bound. *)

  type deployment = {
    cfg : config;
    addrs : Unix.sockaddr array;  (** server 0 is the leader *)
    pids : int array;
  }

  val launch : config -> deployment
  (** Fork one process per server on loopback sockets (ephemeral ports). *)

  val submit :
    deployment -> rng:Prio_crypto.Rng.t -> client_id:int -> F.t array -> bool
  (** Upload one client's encoding over TCP (followers first, then the
      leader with the verify trigger); true iff accepted. *)

  val collect_aggregate : deployment -> F.t array
  (** Query every server's accumulator and sum. *)

  val shutdown : deployment -> unit
  (** Stop and reap every server process. *)
end

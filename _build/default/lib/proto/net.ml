(** A TCP deployment of Prio.

    Everything else in [prio_proto] runs the s servers inside one process
    (with exact byte accounting); this module runs them as separate
    processes speaking length-prefixed frames over real sockets, so the
    system can be deployed the way the paper's Go implementation was: one
    listener per server, clients uploading one sealed packet per server,
    and the leader driving the two SNIP gossip rounds over persistent
    server-to-server connections.

    Protocol (all frames are 4-byte big-endian length + tag byte + body):
    - client → any server:   [P] client_id ‖ sealed packet   (ack [K]/[R])
    - client → leader:       [V] client_id                    — verify now
    - leader → follower:     [o] client_id                    → [O] d‖e
    - leader → follower:     [d] client_id ‖ d ‖ e            → [S] σ‖ζ
    - leader → follower:     [a]/[r] client_id                — decision
    - collector → server:    [Q]                              → [A] accumulator
    - controller → server:   [X]                              — shutdown

    The flow is synchronous: a client acks its packet at every follower
    before asking the leader to verify, so a follower always holds the
    share the leader is about to reference. *)

module Make (F : Prio_field.Field_intf.S) = struct
  module C = Prio_circuit.Circuit.Make (F)
  module Snip = Prio_snip.Snip.Make (F)
  module Sh = Prio_share.Share.Make (F)
  module W = Wire.Make (F)
  module Server = Server.Make (F)
  module Client = Client.Make (F)
  module Rng = Prio_crypto.Rng

  (* ------------------------------ framing --------------------------- *)

  let write_frame fd (payload : Bytes.t) =
    let n = Bytes.length payload in
    let hdr = Bytes.create 4 in
    Bytes.set hdr 0 (Char.chr ((n lsr 24) land 0xff));
    Bytes.set hdr 1 (Char.chr ((n lsr 16) land 0xff));
    Bytes.set hdr 2 (Char.chr ((n lsr 8) land 0xff));
    Bytes.set hdr 3 (Char.chr (n land 0xff));
    let buf = Bytes.cat hdr payload in
    let total = Bytes.length buf in
    let sent = ref 0 in
    while !sent < total do
      sent := !sent + Unix.write fd buf !sent (total - !sent)
    done

  let read_exactly fd n =
    let buf = Bytes.create n in
    let got = ref 0 in
    while !got < n do
      let r = Unix.read fd buf !got (n - !got) in
      if r = 0 then raise End_of_file;
      got := !got + r
    done;
    buf

  let read_frame fd =
    let hdr = read_exactly fd 4 in
    let n =
      (Char.code (Bytes.get hdr 0) lsl 24)
      lor (Char.code (Bytes.get hdr 1) lsl 16)
      lor (Char.code (Bytes.get hdr 2) lsl 8)
      lor Char.code (Bytes.get hdr 3)
    in
    read_exactly fd n

  let put_u32 v =
    Bytes.init 4 (fun i -> Char.chr ((v lsr (8 * (3 - i))) land 0xff))

  let get_u32 b off =
    (Char.code (Bytes.get b off) lsl 24)
    lor (Char.code (Bytes.get b (off + 1)) lsl 16)
    lor (Char.code (Bytes.get b (off + 2)) lsl 8)
    lor Char.code (Bytes.get b (off + 3))

  let tagged tag body = Bytes.cat (Bytes.make 1 tag) body

  (* ------------------------------ server ---------------------------- *)

  type config = {
    circuit : C.t;
    trunc_len : int;
    num_servers : int;
    master : Bytes.t;
    batch_seed : Bytes.t;
        (** all servers derive the shared batch secrets (r, z) from this;
            in deployment the leader would distribute it over the
            authenticated server channels *)
  }

  type pending = {
    share : F.t array;
    mutable state : Snip.server_state option;
  }

  (** Run one server's event loop until an [X] frame arrives. [listen_fd]
      must already be bound and listening (so the caller knows the port).
      The leader (id 0) additionally dials the followers. *)
  let serve cfg ~id ~(listen_fd : Unix.file_descr)
      ~(follower_addrs : Unix.sockaddr array) =
    let payload_elements =
      C.num_inputs cfg.circuit + Snip.proof_num_elements cfg.circuit
    in
    let state =
      Server.create ~id ~num_servers:cfg.num_servers ~master:cfg.master
        ~trunc_len:cfg.trunc_len ~payload_elements
    in
    let ctx =
      Snip.make_batch_ctx
        ~rng:(Rng.of_seed cfg.batch_seed)
        ~circuit:cfg.circuit ~num_servers:cfg.num_servers
    in
    let pending : (int, pending) Hashtbl.t = Hashtbl.create 64 in
    (* leader: persistent connections to followers *)
    let follower_fds =
      if id <> 0 then [||]
      else
        Array.map
          (fun addr ->
            let fd = Unix.socket PF_INET SOCK_STREAM 0 in
            Unix.setsockopt fd TCP_NODELAY true;
            Unix.connect fd addr;
            fd)
          follower_addrs
    in
    let elt_pair b off = (F.of_bytes (Bytes.sub b off F.bytes_len),
                          F.of_bytes (Bytes.sub b (off + F.bytes_len) F.bytes_len)) in
    let pair_bytes a b = Bytes.cat (F.to_bytes a) (F.to_bytes b) in
    let handle_frame fd frame =
      match Bytes.get frame 0 with
      | 'P' ->
        let client_id = get_u32 frame 1 in
        let sealed = Bytes.sub frame 5 (Bytes.length frame - 5) in
        (match Server.receive state ~client_id sealed with
        | None -> write_frame fd (tagged 'R' Bytes.empty)
        | Some (_, share) ->
          Hashtbl.replace pending client_id { share; state = None };
          write_frame fd (tagged 'K' Bytes.empty))
      | 'V' ->
        (* leader only: drive verification of client_id *)
        let client_id = get_u32 frame 1 in
        let ok =
          match Hashtbl.find_opt pending client_id with
          | None -> false
          | Some p ->
            let sub = Snip.submission_of_vector cfg.circuit p.share in
            let my_state, my_opening = Snip.server_prepare ctx sub in
            (* round 1: collect openings *)
            let d = ref my_opening.Snip.d and e = ref my_opening.Snip.e in
            Array.iter
              (fun ffd ->
                write_frame ffd (tagged 'o' (put_u32 client_id));
                let reply = read_frame ffd in
                assert (Bytes.get reply 0 = 'O');
                let dd, ee = elt_pair reply 1 in
                d := F.add !d dd;
                e := F.add !e ee)
              follower_fds;
            (* round 2: broadcast sums, collect verdicts *)
            let my_verdict = Snip.server_decide_share ctx my_state ~d:!d ~e:!e in
            let sigma = ref my_verdict.Snip.sigma
            and zero = ref my_verdict.Snip.zero in
            Array.iter
              (fun ffd ->
                write_frame ffd
                  (tagged 'd' (Bytes.cat (put_u32 client_id) (pair_bytes !d !e)));
                let reply = read_frame ffd in
                assert (Bytes.get reply 0 = 'S');
                let s, z = elt_pair reply 1 in
                sigma := F.add !sigma s;
                zero := F.add !zero z)
              follower_fds;
            let accepted = F.is_zero !sigma && F.is_zero !zero in
            let tag = if accepted then 'a' else 'r' in
            Array.iter
              (fun ffd -> write_frame ffd (tagged tag (put_u32 client_id)))
              follower_fds;
            if accepted then Server.accumulate state p.share;
            Hashtbl.remove pending client_id;
            accepted
        in
        write_frame fd (tagged (if ok then 'K' else 'R') Bytes.empty)
      | 'o' ->
        (* follower: local prepare, reply with opening *)
        let client_id = get_u32 frame 1 in
        let p = Hashtbl.find pending client_id in
        let sub = Snip.submission_of_vector cfg.circuit p.share in
        let st, opening = Snip.server_prepare ctx sub in
        p.state <- Some st;
        write_frame fd (tagged 'O' (pair_bytes opening.Snip.d opening.Snip.e))
      | 'd' ->
        let client_id = get_u32 frame 1 in
        let d, e = elt_pair frame 5 in
        let p = Hashtbl.find pending client_id in
        let v = Snip.server_decide_share ctx (Option.get p.state) ~d ~e in
        write_frame fd (tagged 'S' (pair_bytes v.Snip.sigma v.Snip.zero))
      | 'a' ->
        let client_id = get_u32 frame 1 in
        let p = Hashtbl.find pending client_id in
        Server.accumulate state p.share;
        Hashtbl.remove pending client_id
      | 'r' ->
        let client_id = get_u32 frame 1 in
        Hashtbl.remove pending client_id
      | 'Q' ->
        write_frame fd (tagged 'A' (W.vector_to_bytes (Server.publish state)))
      | 'X' -> raise Exit
      | c -> invalid_arg (Printf.sprintf "Net.serve: unknown tag %C" c)
    in
    (* select loop over the listener and all live connections *)
    let conns = ref [] in
    (try
       while true do
         let readable, _, _ = Unix.select (listen_fd :: !conns) [] [] (-1.) in
         List.iter
           (fun fd ->
             if fd = listen_fd then begin
               let conn, _ = Unix.accept listen_fd in
               Unix.setsockopt conn TCP_NODELAY true;
               conns := conn :: !conns
             end
             else
               match read_frame fd with
               | frame -> handle_frame fd frame
               | exception End_of_file ->
                 Unix.close fd;
                 conns := List.filter (fun c -> c <> fd) !conns)
           readable
       done
     with Exit -> ());
    List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) !conns;
    Array.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) follower_fds;
    Unix.close listen_fd

  (* --------------------------- deployment --------------------------- *)

  type deployment = {
    cfg : config;
    addrs : Unix.sockaddr array;  (** server 0 is the leader *)
    pids : int array;
  }

  let localhost port = Unix.ADDR_INET (Unix.inet_addr_loopback, port)

  (** Fork one OS process per server on loopback sockets. *)
  let launch cfg : deployment =
    let listeners =
      Array.init cfg.num_servers (fun _ ->
          let fd = Unix.socket PF_INET SOCK_STREAM 0 in
          Unix.setsockopt fd SO_REUSEADDR true;
          Unix.bind fd (localhost 0);
          Unix.listen fd 32;
          fd)
    in
    let addrs =
      Array.map
        (fun fd ->
          match Unix.getsockname fd with
          | ADDR_INET (_, port) -> localhost port
          | ADDR_UNIX _ -> assert false)
        listeners
    in
    let follower_addrs = Array.sub addrs 1 (cfg.num_servers - 1) in
    (* don't let children inherit (and later re-flush) buffered output *)
    flush stdout;
    flush stderr;
    let pids =
      Array.init cfg.num_servers (fun id ->
          match Unix.fork () with
          | 0 ->
            (* child: close the other servers' listeners, then serve *)
            Array.iteri (fun j fd -> if j <> id then Unix.close fd) listeners;
            (try serve cfg ~id ~listen_fd:listeners.(id) ~follower_addrs
             with e ->
               prerr_endline ("prio net server: " ^ Printexc.to_string e));
            exit 0
          | pid -> pid)
    in
    Array.iter Unix.close listeners;
    { cfg; addrs; pids }

  let dial addr =
    let fd = Unix.socket PF_INET SOCK_STREAM 0 in
    Unix.setsockopt fd TCP_NODELAY true;
    let rec attempt tries =
      match Unix.connect fd addr with
      | () -> ()
      | exception Unix.Unix_error (ECONNREFUSED, _, _) when tries > 0 ->
        Unix.sleepf 0.02;
        attempt (tries - 1)
    in
    attempt 100;
    fd

  (** Upload one client's submission over TCP and drive its verification;
      returns true iff the cluster accepted it. *)
  let submit d ~rng ~client_id (encoding : F.t array) : bool =
    let pk =
      Client.submit ~rng
        ~mode:(Client.Robust_snip d.cfg.circuit)
        ~num_servers:d.cfg.num_servers ~client_id ~master:d.cfg.master encoding
    in
    let fds = Array.map dial d.addrs in
    let ack = ref true in
    (* followers first, so their shares are in place; leader last *)
    let order =
      List.init (d.cfg.num_servers - 1) (fun i -> i + 1) @ [ 0 ]
    in
    List.iter
      (fun i ->
        write_frame fds.(i)
          (tagged 'P' (Bytes.cat (put_u32 client_id) pk.Client.sealed.(i)));
        let reply = read_frame fds.(i) in
        if Bytes.get reply 0 <> 'K' then ack := false)
      order;
    let accepted =
      !ack
      && begin
           write_frame fds.(0) (tagged 'V' (put_u32 client_id));
           Bytes.get (read_frame fds.(0)) 0 = 'K'
         end
    in
    Array.iter Unix.close fds;
    accepted

  (** Fetch and sum all accumulators. *)
  let collect_aggregate d : F.t array =
    let acc = Array.make d.cfg.trunc_len F.zero in
    Array.iter
      (fun addr ->
        let fd = dial addr in
        write_frame fd (tagged 'Q' Bytes.empty);
        let reply = read_frame fd in
        assert (Bytes.get reply 0 = 'A');
        let v = W.vector_of_bytes (Bytes.sub reply 1 (Bytes.length reply - 1)) in
        Array.iteri (fun j x -> acc.(j) <- F.add acc.(j) x) v;
        Unix.close fd)
      d.addrs;
    acc

  (** Stop all server processes and reap them. *)
  let shutdown d =
    Array.iter
      (fun addr ->
        try
          let fd = dial addr in
          write_frame fd (tagged 'X' Bytes.empty);
          Unix.close fd
        with Unix.Unix_error _ -> ())
      d.addrs;
    Array.iter (fun pid -> ignore (Unix.waitpid [] pid)) d.pids
end

(** Threshold aggregation — the Appendix B extension.

    Prio proper uses s-out-of-s additive sharing: if any server goes
    offline the epoch's aggregate is lost. Appendix B sketches the
    alternative: replace additive sharing with Shamir threshold sharing so
    any k+1 of the s servers can reconstruct the published aggregate —
    tolerating s−k−1 faulty servers — at the documented privacy cost:
    k+1 colluding servers can now reconstruct an individual client's
    (encoded) submission, so privacy only holds against coalitions of at
    most k servers (versus s−1 for standard Prio).

    Shamir sharing is linear, so the servers still accumulate locally: the
    sum of each server's share-points is a share-point of the summed
    encodings. This module implements that aggregation core; pairing it
    with SNIP verification would follow the same lines as {!Cluster} and is
    orthogonal to what Appendix B establishes. *)

module Make (F : Prio_field.Field_intf.S) = struct
  module Sh = Prio_share.Share.Make (F)
  module P = Prio_poly.Poly.Make (F)
  module Rng = Prio_crypto.Rng

  type t = {
    num_servers : int;
    threshold : int;  (** servers needed to reconstruct (k+1) *)
    len : int;
    accumulators : F.t array array;  (** [server].(coordinate) share points *)
    mutable accepted : int;
  }

  let create ~num_servers ~threshold ~len =
    if threshold < 1 || threshold > num_servers then
      invalid_arg "Threshold.create: need 1 <= threshold <= servers";
    {
      num_servers;
      threshold;
      len;
      accumulators = Array.make_matrix num_servers len F.zero;
      accepted = 0;
    }

  (** Number of crashed servers the deployment tolerates. *)
  let fault_tolerance t = t.num_servers - t.threshold

  (** Largest server coalition against which privacy still holds. *)
  let privacy_threshold t = t.threshold - 1

  (** Client upload: Shamir-split every encoding coordinate; server i
      receives the share points at x = i+1. *)
  let submit rng t (encoding : F.t array) =
    if Array.length encoding <> t.len then invalid_arg "Threshold.submit: length";
    for j = 0 to t.len - 1 do
      let pts =
        Sh.Shamir.split rng ~threshold:t.threshold ~shares:t.num_servers
          encoding.(j)
      in
      Array.iteri
        (fun i (_, y) ->
          t.accumulators.(i).(j) <- F.add t.accumulators.(i).(j) y)
        pts
    done;
    t.accepted <- t.accepted + 1

  (** Reconstruct the aggregate from the accumulators of any
      [>= threshold] surviving servers (given by index). *)
  let publish t ~(servers : int list) : F.t array =
    if List.length servers < t.threshold then
      invalid_arg "Threshold.publish: not enough servers";
    List.iter
      (fun i ->
        if i < 0 || i >= t.num_servers then invalid_arg "Threshold.publish: bad id")
      servers;
    Array.init t.len (fun j ->
        let pts =
          servers
          |> List.map (fun i -> (F.of_int (i + 1), t.accumulators.(i).(j)))
          |> Array.of_list
        in
        P.eval (P.interpolate pts) F.zero)
end

(** Threshold aggregation — the Appendix B extension: Shamir-shared
    accumulators let any k+1 of s servers reconstruct the aggregate,
    tolerating s−k−1 crashed servers, at the cost Appendix B spells out —
    privacy now only holds against coalitions of at most k servers. *)

module Make (F : Prio_field.Field_intf.S) : sig
  type t

  val create : num_servers:int -> threshold:int -> len:int -> t
  (** [threshold] servers are needed to reconstruct (k+1). *)

  val fault_tolerance : t -> int
  (** Crashed servers tolerated: s − threshold. *)

  val privacy_threshold : t -> int
  (** Largest coalition privacy still resists: threshold − 1. *)

  val submit : Prio_crypto.Rng.t -> t -> F.t array -> unit
  (** Shamir-split each encoding coordinate; server i accumulates the
      share points at x = i+1 (Shamir is linear). *)

  val publish : t -> servers:int list -> F.t array
  (** Reconstruct from any ≥ threshold surviving servers' accumulators.
      @raise Invalid_argument with fewer. *)
end

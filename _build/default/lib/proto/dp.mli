(** Distributed differential-privacy noise (paper §7).

    Defends the published aggregates against intersection attacks: each
    server adds a share of two-sided-geometric (discrete Laplace) noise
    before publication, so no single server ever sees the exact total and
    the released statistic is ε-differentially private.

    The decomposition: if each of s servers adds X_i − Y_i with X_i, Y_i
    independent Pólya(1/s, α), the sum is exactly TSG(α); α = exp(−ε/Δ)
    gives ε-DP for sensitivity-Δ queries. *)

val alpha_of_epsilon : epsilon:float -> sensitivity:int -> float
(** The TSG parameter for an (ε, Δ) target. *)

val gamma : Prio_crypto.Rng.t -> shape:float -> float
(** Gamma(shape, 1) sampler (Marsaglia–Tsang with the shape-boost for
    shape < 1); exposed for the Pólya mixture and its tests. *)

val poisson : Prio_crypto.Rng.t -> lambda:float -> int

val polya : Prio_crypto.Rng.t -> r:float -> alpha:float -> int
(** Pólya (negative binomial with real shape [r]) via the Gamma–Poisson
    mixture. *)

val server_noise_share : Prio_crypto.Rng.t -> num_servers:int -> alpha:float -> int
(** One server's additive noise contribution; the [num_servers] shares
    sum to TSG([alpha]) noise while any proper subset reveals nothing
    about the rest. *)

val two_sided_geometric : Prio_crypto.Rng.t -> alpha:float -> int
(** Reference sampler for the full TSG distribution (tests compare its
    moments against the distributed decomposition). *)

val tsg_variance : alpha:float -> float
(** Var[TSG(α)] = 2α/(1−α)². *)

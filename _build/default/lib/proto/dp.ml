(** Distributed differential-privacy noise (paper §7, "intersection
    attack" defense; Dwork et al. distributed noise generation).

    Prio's aggregates are exact; to blunt intersection attacks the servers
    can jointly add noise so that no single server ever sees the un-noised
    total. We use the standard decomposition of the two-sided geometric
    (discrete Laplace) distribution: if each of s servers adds X_i − Y_i
    with X_i, Y_i independent Pólya(1/s, α) variables, the published sum
    carries exactly TSG(α) noise — giving ε-DP for a sensitivity-Δ query
    when α = exp(−ε/Δ) — while any s−1 servers' noise shares reveal nothing
    about the remainder. *)

module Rng = Prio_crypto.Rng

let alpha_of_epsilon ~epsilon ~sensitivity =
  if epsilon <= 0. || sensitivity <= 0 then invalid_arg "Dp.alpha_of_epsilon";
  exp (-.epsilon /. float_of_int sensitivity)

(* Gamma(shape, scale=1) sampler, Marsaglia–Tsang, with the U^(1/a) boost
   for shape < 1. *)
let rec gamma rng ~shape =
  if shape <= 0. then invalid_arg "Dp.gamma: shape <= 0"
  else if shape < 1. then begin
    let u = Rng.float01 rng in
    let u = if u = 0. then 1e-300 else u in
    gamma rng ~shape:(shape +. 1.) *. (u ** (1. /. shape))
  end
  else begin
    let d = shape -. (1. /. 3.) in
    let c = 1. /. sqrt (9. *. d) in
    let rec normal () =
      (* Box–Muller *)
      let u1 = Rng.float01 rng and u2 = Rng.float01 rng in
      let u1 = if u1 = 0. then 1e-300 else u1 in
      sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)
    and draw () =
      let x = normal () in
      let v = (1. +. (c *. x)) ** 3. in
      if v <= 0. then draw ()
      else begin
        let u = Rng.float01 rng in
        let u = if u = 0. then 1e-300 else u in
        if log u < (0.5 *. x *. x) +. d -. (d *. v) +. (d *. log v) then d *. v
        else draw ()
      end
    in
    draw ()
  end

(* Poisson(lambda) by inversion (lambda is small in our use). *)
let poisson rng ~lambda =
  if lambda < 0. then invalid_arg "Dp.poisson: negative rate";
  if lambda = 0. then 0
  else begin
    let l = exp (-.lambda) in
    let rec go k p =
      let p = p *. Rng.float01 rng in
      if p <= l then k else go (k + 1) p
    in
    go 0 1.
  end

(** Pólya (negative binomial with real shape r) with success probability
    [alpha]: a Gamma–Poisson mixture. *)
let polya rng ~r ~alpha =
  if alpha <= 0. || alpha >= 1. then invalid_arg "Dp.polya: alpha in (0,1)";
  let lambda = gamma rng ~shape:r *. (alpha /. (1. -. alpha)) in
  poisson rng ~lambda

(** One server's additive noise share. Summing [num_servers] independent
    shares yields two-sided geometric noise with parameter [alpha]. *)
let server_noise_share rng ~num_servers ~alpha =
  let r = 1. /. float_of_int num_servers in
  polya rng ~r ~alpha - polya rng ~r ~alpha

(** Reference sampler for the full two-sided geometric distribution
    (difference of two Geometric(1−α) variables); used by tests to compare
    moments against the distributed decomposition. *)
let two_sided_geometric rng ~alpha =
  if alpha <= 0. || alpha >= 1. then invalid_arg "Dp.two_sided_geometric";
  let geometric () =
    (* number of failures before first success, success prob 1−α *)
    let u = Rng.float01 rng in
    let u = if u = 0. then 1e-300 else u in
    int_of_float (floor (log u /. log alpha))
  in
  geometric () - geometric ()

(** Variance of TSG(α): 2α / (1−α)². *)
let tsg_variance ~alpha = 2. *. alpha /. ((1. -. alpha) ** 2.)
